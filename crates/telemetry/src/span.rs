//! Hierarchical span timers and the [`RunContext`] that records them.
//!
//! A [`Span`] measures one named phase: wall-clock time plus the
//! *calling thread's* CPU time (utime + stime). Spans nest — a stage
//! that opens sub-phases produces children under its own node. Work
//! fanned out to other threads (worker ranks, per-cluster assembly
//! threads) is not visible in a span's `cpu_seconds`; that is what the
//! per-rank channels in [`crate::RankReport`] are for.

use crate::cpu::thread_cpu_seconds;
use crate::json::{Json, JsonError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// One completed, named timing interval with nested children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Phase name, e.g. `"cluster"` or `"gst_build"`.
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub wall_seconds: f64,
    /// CPU seconds consumed by the thread that ran the span.
    pub cpu_seconds: f64,
    /// Sub-phases, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// Depth-first lookup by `/`-separated path, e.g.
    /// `"pipeline/cluster"` finds the child `cluster` of this span if
    /// this span is named `pipeline`.
    pub fn find(&self, path: &str) -> Option<&Span> {
        let (head, rest) = match path.split_once('/') {
            Some((h, r)) => (h, Some(r)),
            None => (path, None),
        };
        if self.name != head {
            return None;
        }
        match rest {
            None => Some(self),
            Some(rest) => self.children.iter().find_map(|c| c.find(rest)),
        }
    }

    /// Sum of the direct children's wall-clock seconds.
    pub fn child_wall_seconds(&self) -> f64 {
        self.children.iter().map(|c| c.wall_seconds).sum()
    }

    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("cpu_seconds", Json::Num(self.cpu_seconds)),
            ("children", Json::Arr(self.children.iter().map(Span::to_json).collect())),
        ])
    }

    /// Decode from JSON produced by [`Span::to_json`].
    pub fn from_json(v: &Json) -> Result<Span, JsonError> {
        let field = |key: &str| v.get(key).ok_or(JsonError { msg: format!("span missing '{key}'"), at: 0 });
        Ok(Span {
            name: field("name")?.as_str().unwrap_or_default().to_string(),
            wall_seconds: field("wall_seconds")?.as_f64().unwrap_or(0.0),
            cpu_seconds: field("cpu_seconds")?.as_f64().unwrap_or(0.0),
            children: field("children")?
                .as_arr()
                .unwrap_or_default()
                .iter()
                .map(Span::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

struct Frame {
    name: String,
    wall_start: Instant,
    cpu_start: f64,
    children: Vec<Span>,
}

/// Mutable recording surface threaded through a run: an open-span
/// stack, named counters, and per-rank channels. Finalize with
/// [`RunContext::finish`] to obtain the immutable [`crate::RunReport`].
pub struct RunContext {
    label: String,
    stack: Vec<Frame>,
    roots: Vec<Span>,
    counters: BTreeMap<String, u64>,
    ranks: Vec<crate::RankReport>,
    traces: Vec<crate::RankTrace>,
    series: Vec<crate::RankSeries>,
}

impl RunContext {
    /// Fresh context for a run labelled `label` (e.g. the command or
    /// experiment id).
    pub fn new(label: &str) -> Self {
        RunContext {
            label: label.to_string(),
            stack: Vec::new(),
            roots: Vec::new(),
            counters: BTreeMap::new(),
            ranks: Vec::new(),
            traces: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Time `f` under a span named `name`, nested below whatever span
    /// is currently open. The closure's return value passes through.
    pub fn scope<T>(&mut self, name: &str, f: impl FnOnce(&mut RunContext) -> T) -> T {
        self.push(name);
        let out = f(self);
        self.pop();
        out
    }

    /// Open a span manually (for phases that cannot be expressed as a
    /// closure). Must be balanced by [`RunContext::pop`].
    pub fn push(&mut self, name: &str) {
        self.stack.push(Frame {
            name: name.to_string(),
            wall_start: Instant::now(),
            cpu_start: thread_cpu_seconds(),
            children: Vec::new(),
        });
    }

    /// Close the innermost open span, returning its (wall, cpu)
    /// seconds. Panics if no span is open.
    pub fn pop(&mut self) -> (f64, f64) {
        let frame = self.stack.pop().expect("RunContext::pop with no open span");
        let wall = frame.wall_start.elapsed().as_secs_f64();
        let cpu = (thread_cpu_seconds() - frame.cpu_start).max(0.0);
        let span = Span { name: frame.name, wall_seconds: wall, cpu_seconds: cpu, children: frame.children };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => self.roots.push(span),
        }
        (wall, cpu)
    }

    /// Record a completed span measured externally (e.g. a phase whose
    /// duration was computed from rank-local clocks).
    pub fn record_span(&mut self, span: Span) {
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => self.roots.push(span),
        }
    }

    /// Add `v` to counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Overwrite counter `name`.
    pub fn set(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Install the per-rank channel reports for this run (replacing any
    /// previous set — a run has one parallel section's rank layout).
    pub fn set_ranks(&mut self, ranks: Vec<crate::RankReport>) {
        self.ranks = ranks;
    }

    /// Merge a second parallel section's rank channels into the ones
    /// already installed, matching entries by rank id: CPU and idle
    /// seconds add up, counters sum on name collision, and per-tag comm
    /// rows append (phases label their tags distinctly, so rows stay
    /// attributable). A rank id with no existing entry is appended —
    /// the run keeps one channel per rank regardless of how many
    /// phases used that rank.
    pub fn merge_ranks(&mut self, more: Vec<crate::RankReport>) {
        for extra in more {
            match self.ranks.iter_mut().find(|r| r.rank == extra.rank) {
                Some(rank) => {
                    rank.cpu_seconds += extra.cpu_seconds;
                    rank.idle_seconds += extra.idle_seconds;
                    for (name, v) in extra.counters {
                        *rank.counters.entry(name).or_insert(0) += v;
                    }
                    rank.comm.extend(extra.comm);
                }
                None => self.ranks.push(extra),
            }
        }
    }

    /// Install the finished per-rank event traces for this run
    /// (replacing any previous set).
    pub fn set_traces(&mut self, traces: Vec<crate::RankTrace>) {
        self.traces = traces;
    }

    /// Append one finished track (e.g. the pipeline's own thread).
    pub fn add_trace(&mut self, trace: crate::RankTrace) {
        self.traces.push(trace);
    }

    /// Traces recorded so far.
    pub fn traces(&self) -> &[crate::RankTrace] {
        &self.traces
    }

    /// Append finished per-rank gauge series (series from different
    /// phases live on different rank/track ids, so appends never
    /// collide). Empty series are skipped.
    pub fn add_series(&mut self, series: impl IntoIterator<Item = crate::RankSeries>) {
        self.series.extend(series.into_iter().filter(|s| !s.is_empty()));
    }

    /// Gauge series recorded so far.
    pub fn series(&self) -> &[crate::RankSeries] {
        &self.series
    }

    /// Total gauge samples dropped on buffer overflow, across ranks.
    pub fn series_dropped_samples(&self) -> u64 {
        self.series.iter().map(|s| s.dropped_samples()).sum()
    }

    /// Total sampler self-time across ranks, nanoseconds.
    pub fn series_overhead_ns(&self) -> u64 {
        self.series.iter().map(|s| s.overhead_ns).sum()
    }

    /// Assemble the recorded tracks into an exportable [`crate::Trace`]
    /// document (tracks sorted by rank, gauge series attached as
    /// counter tracks).
    pub fn trace_document(&self) -> crate::Trace {
        crate::Trace::with_series(self.traces.clone(), self.series.clone())
    }

    /// Number of open spans (0 when balanced).
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Finalize into an immutable report. Panics if spans are still
    /// open — an unbalanced push/pop is a caller bug worth failing
    /// loudly on.
    ///
    /// When traces were recorded, each rank channel gains its
    /// [`crate::IdleGapHistogram`] (from the matching track's blocked
    /// spans) and the report gains a [`crate::TraceSummary`] with the
    /// master track's occupancy over ~20 time windows.
    pub fn finish(self) -> crate::RunReport {
        assert!(self.stack.is_empty(), "RunContext::finish with {} span(s) still open", self.stack.len());
        let mut ranks = self.ranks;
        let trace = if self.traces.is_empty() {
            None
        } else {
            for rank in &mut ranks {
                if let Some(track) = self.traces.iter().find(|t| t.rank == rank.rank) {
                    rank.idle_gaps = Some(crate::IdleGapHistogram::from_events(&track.events));
                }
            }
            let (window_seconds, master_occupancy) = self
                .traces
                .iter()
                .find(|t| t.label == "master")
                .map(|t| crate::trace::occupancy_windows(&t.events, 20))
                .unwrap_or((0.0, Vec::new()));
            let dropped_events = self.traces.iter().map(|t| t.dropped_events).sum();
            Some(crate::TraceSummary { window_seconds, master_occupancy, dropped_events })
        };
        let mut series = self.series;
        series.sort_by_key(|s| s.rank);
        // The v4 faults section is derived from the canonical fault
        // counters, so any run that tallied them reports the digest
        // without extra plumbing; a clean run omits the section.
        let c = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let faults = crate::FaultSummary {
            kills_injected: c(crate::names::FAULT_KILLS),
            dead_ranks: c(crate::names::DEAD_RANKS),
            recovered_tasks: c(crate::names::RECOVERED_TASKS),
            msgs_dropped: c(crate::names::FAULT_MSGS_DROPPED),
            msgs_delayed: c(crate::names::FAULT_MSGS_DELAYED),
            ckpt_bytes: c(crate::names::CKPT_BYTES),
        };
        crate::RunReport {
            schema_version: crate::SCHEMA_VERSION,
            label: self.label,
            spans: self.roots,
            counters: self.counters,
            ranks,
            trace,
            series,
            faults: if faults.is_empty() { None } else { Some(faults) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_matches_call_structure() {
        let mut ctx = RunContext::new("t");
        ctx.scope("outer", |ctx| {
            ctx.scope("a", |_| {});
            ctx.scope("b", |ctx| {
                ctx.scope("b1", |_| {});
            });
        });
        let report = ctx.finish();
        assert_eq!(report.spans.len(), 1);
        let outer = &report.spans[0];
        assert_eq!(outer.name, "outer");
        let names: Vec<&str> = outer.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(outer.children[1].children[0].name, "b1");
        assert!(outer.find("outer/b/b1").is_some());
        assert!(outer.find("outer/b/zzz").is_none());
    }

    #[test]
    fn parent_wall_covers_children() {
        let mut ctx = RunContext::new("t");
        ctx.scope("outer", |ctx| {
            ctx.scope("child", |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        let report = ctx.finish();
        let outer = &report.spans[0];
        assert!(outer.wall_seconds >= outer.children[0].wall_seconds);
        assert!(outer.children[0].wall_seconds >= 0.004);
    }

    #[test]
    fn counters_accumulate() {
        let mut ctx = RunContext::new("t");
        ctx.add("pairs", 3);
        ctx.add("pairs", 4);
        ctx.set("ranks", 8);
        assert_eq!(ctx.counter("pairs"), 7);
        assert_eq!(ctx.counter("ranks"), 8);
        assert_eq!(ctx.counter("missing"), 0);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn finish_rejects_unbalanced_stack() {
        let mut ctx = RunContext::new("t");
        ctx.push("dangling");
        let _ = ctx.finish();
    }

    #[test]
    fn span_json_round_trip() {
        let span = Span {
            name: "outer".into(),
            wall_seconds: 1.5,
            cpu_seconds: 0.25,
            children: vec![Span {
                name: "inner".into(),
                wall_seconds: 0.5,
                cpu_seconds: 0.125,
                children: vec![],
            }],
        };
        let back = Span::from_json(&span.to_json()).unwrap();
        assert_eq!(back, span);
    }
}
