//! Canonical names for counters, tag labels, and trace events.
//!
//! Every layer that records a metric and every consumer that reads one
//! back (bench tables, report assertions, the trace exporter) goes
//! through these constants, so a typo'd counter name is a compile error
//! instead of a silently empty metric.

// ---- run / rank counters -------------------------------------------------

/// Pairs yielded by the generators (paper Table 1 "generated").
pub const PAIRS_GENERATED: &str = "pairs_generated";
/// Pairs actually aligned (after the cluster-check skip).
pub const PAIRS_ALIGNED: &str = "pairs_aligned";
/// Aligned pairs that met the acceptance criteria.
pub const PAIRS_ACCEPTED: &str = "pairs_accepted";
/// Pairs the master selected into the pending buffer.
pub const PAIRS_SELECTED: &str = "pairs_selected";
/// Union–Find merges performed.
pub const MERGES: &str = "merges";
/// Dynamic-programming cells evaluated by the aligners.
pub const DP_CELLS: &str = "dp_cells";
/// DP cells evaluated by the score-only forward pass (phase 1).
pub const ALIGN_PHASE1_CELLS: &str = "align_phase1_cells";
/// DP cells re-evaluated by the lazy traceback-window pass (phase 2).
pub const ALIGN_PHASE2_CELLS: &str = "align_phase2_cells";
/// Alignments abandoned mid-pass by the early-exit score bound.
pub const ALIGN_EARLY_EXIT: &str = "align_early_exit";
/// Alignments whose traceback pass was skipped (score below the
/// acceptance floor after a full forward pass).
pub const ALIGN_TRACEBACK_SKIPPED: &str = "align_traceback_skipped";
/// Phase-1 DP cells the adaptive X-drop band shrink avoided computing
/// (cells inside the fixed band but outside the shrunk live hull).
pub const ALIGN_CELLS_SAVED_ADAPTIVE: &str = "align_cells_saved_adaptive";
/// Band rows whose live interior was strictly narrower than the fixed
/// band (the adaptive shrink engaged on that row).
pub const ALIGN_BAND_ROWS_SHRUNK: &str = "align_band_rows_shrunk";
/// Effective lane width of the phase-1 inner loop in this build
/// (capability note: `LANES` normally, 1 under `force-scalar`).
pub const SIMD_LANES: &str = "simd_lanes";
/// High-water bytes held by a rank's alignment scratch buffers.
pub const ALIGN_SCRATCH_BYTES_PEAK: &str = "align_scratch_bytes_peak";
/// Times the alignment scratch had to grow after its pre-sizing
/// (should stay 0 — the zero-allocation hot-loop invariant).
pub const ALIGN_SCRATCH_GROWS: &str = "align_scratch_grows";
/// Total clusters in the final partition.
pub const CLUSTERS: &str = "clusters";
/// Clusters with at least two members.
pub const NON_SINGLETON_CLUSTERS: &str = "non_singleton_clusters";
/// Reads entering the pipeline.
pub const READS_IN: &str = "reads_in";
/// Fragments surviving preprocessing.
pub const FRAGMENTS: &str = "fragments";
/// Non-singleton clusters handed to the assembler.
pub const ASSEMBLED_CLUSTERS: &str = "assembled_clusters";
/// Contigs produced across all clusters.
pub const CONTIGS: &str = "contigs";

// ---- artifact-cache counters ----------------------------------------------

/// Artifact-cache lookups that returned a valid, matching entry.
pub const CACHE_HIT: &str = "cache_hit";
/// Artifact-cache lookups that found nothing usable (absent, stale
/// schema, corrupt, or params mismatch) — the stage recomputed.
pub const CACHE_MISS: &str = "cache_miss";
/// Bytes of cache entries written this run (header + payload).
pub const CACHE_BYTES_WRITTEN: &str = "cache_bytes_written";
/// Bytes of cache payloads loaded this run.
pub const CACHE_BYTES_READ: &str = "cache_bytes_read";

// ---- distributed-assembly counters ----------------------------------------

/// Clusters this rank assembled in the distributed assemble stage.
pub const ASM_CLUSTERS_ASSEMBLED: &str = "asm_clusters_assembled";
/// Reads fed into this rank's cluster assemblies.
pub const ASM_READS_ASSEMBLED: &str = "asm_reads_assembled";
/// Deterministic work proxy: Σ k·(k−1)/2 over this rank's assigned
/// clusters (candidate overlap pairs) — the load-balance metric that
/// does not wobble with host scheduling.
pub const ASM_COST_UNITS: &str = "asm_cost_units";
/// Contig bases this rank shipped back to the master.
pub const ASM_CONTIG_BASES: &str = "asm_contig_bases";
/// Assemble-phase report/grant round-trips a worker completed.
pub const ASM_BATCH_ROUND_TRIPS: &str = "asm_batch_round_trips";
/// Assemble-phase peak depth of the master's pending-task buffer.
pub const ASM_PEAK_QUEUE_DEPTH: &str = "asm_peak_queue_depth";
/// Assemble-phase non-empty task batches the master dispatched.
pub const ASM_BATCHES_DISPATCHED: &str = "asm_batches_dispatched";

// ---- fault-injection / recovery counters ----------------------------------

/// Ranks the fault plan killed in this run.
pub const FAULT_KILLS: &str = "fault_kills";
/// Messages the fault plan discarded at the sender.
pub const FAULT_MSGS_DROPPED: &str = "fault_msgs_dropped";
/// Messages the fault plan held back and delivered late.
pub const FAULT_MSGS_DELAYED: &str = "fault_msgs_delayed";
/// Death notices a dying rank broadcast to its peers.
pub const FAULT_DEATH_NOTICES: &str = "fault_death_notices";
/// Sends blackholed because the destination rank was already dead.
pub const FAULT_MSGS_LOST: &str = "fault_msgs_lost";
/// This rank's fault-clock reading at exit (fault-aware calls made) —
/// the coordinate system `kill:…,event=` clauses aim at. Only present
/// when a plan is armed.
pub const FAULT_EVENTS: &str = "fault_events";
/// Tasks re-queued from dead workers' outstanding leases and
/// re-executed by survivors.
pub const RECOVERED_TASKS: &str = "recovered_tasks";
/// Worker ranks the master marked dead (death notice or liveness
/// timeout) during the run.
pub const DEAD_RANKS: &str = "dead_ranks";
/// Bytes of master checkpoint snapshots written this run.
pub const CKPT_BYTES: &str = "ckpt_bytes";
/// Master checkpoint snapshots written this run.
pub const CKPT_WRITES: &str = "ckpt_writes";
/// Generator scopes this worker adopted from dead peers.
pub const SCOPES_ADOPTED: &str = "scopes_adopted";

// ---- master–worker protocol counters -------------------------------------

/// Peak depth of the master's pending-work buffer.
pub const PEAK_QUEUE_DEPTH: &str = "peak_queue_depth";
/// Non-empty AW batches the master dispatched.
pub const BATCHES_DISPATCHED: &str = "batches_dispatched";
/// Deepest single drain of the master's inbox.
pub const INBOX_DRAIN_DEPTH_MAX: &str = "inbox_drain_depth_max";
/// Report/grant round-trips a worker completed.
pub const BATCH_ROUND_TRIPS: &str = "batch_round_trips";
/// Nanoseconds this rank spent blocked in `recv` over the whole run.
pub const WAIT_NS_TOTAL: &str = "wait_ns_total";
/// Nanoseconds this rank spent blocked in barriers over the whole run.
pub const BARRIER_NS_TOTAL: &str = "barrier_ns_total";

// ---- coalescing-layer counters -------------------------------------------

/// Logical messages that travelled inside an envelope.
pub const MSGS_COALESCED: &str = "msgs_coalesced";
/// Envelopes put on the wire.
pub const ENVELOPES_SENT: &str = "envelopes_sent";
/// Queue flushes tripped by the byte threshold.
pub const FLUSH_BY_BYTES: &str = "flush_by_bytes";
/// Queue flushes tripped by the message-count threshold.
pub const FLUSH_BY_MSGS: &str = "flush_by_msgs";
/// Queue flushes forced by the rank blocking.
pub const FLUSH_ON_BLOCK: &str = "flush_on_block";
/// Explicit and ordering-forced queue flushes.
pub const FLUSH_EXPLICIT: &str = "flush_explicit";

// ---- tag labels -----------------------------------------------------------

/// Worker → master alignment results (paper's `AR`).
pub const TAG_W2M_AR: &str = "w2m_ar";
/// Worker → master new pairs + generator status (paper's `NP`).
pub const TAG_W2M_NP: &str = "w2m_np";
/// Master → worker flow-control grant (paper's `R`).
pub const TAG_M2W_R: &str = "m2w_r";
/// Master → worker alignment batch (paper's `AW`).
pub const TAG_M2W_AW: &str = "m2w_aw";
/// Framed envelope carrying coalesced messages.
pub const TAG_COALESCED: &str = "coalesced";
/// Worker → master assembled-contig results (assemble stage's `AR`).
pub const TAG_ASM_W2M_RES: &str = "asm_w2m_res";
/// Worker → master assemble-stage readiness report (its `NP`; always
/// passive — workers never generate assemble tasks).
pub const TAG_ASM_W2M_RDY: &str = "asm_w2m_rdy";
/// Master → worker assemble-stage flow-control grant (its `R`).
pub const TAG_ASM_M2W_GRANT: &str = "asm_m2w_grant";
/// Master → worker cluster-task batch (its `AW`).
pub const TAG_ASM_M2W_TASK: &str = "asm_m2w_task";
/// Death notice a dying rank broadcasts to every peer.
pub const TAG_DEATH: &str = "death";

// ---- gauge (time-series) names --------------------------------------------

/// Depth of the master's pending-task buffer at sample time.
pub const GAUGE_PENDING_TASKS: &str = "pending_tasks";
/// Messages drained from the master's inbox in the current pump round.
pub const GAUGE_INBOX_DEPTH: &str = "inbox_depth";
/// Workers with an un-granted report outstanding at the master.
pub const GAUGE_WORKERS_OUTSTANDING: &str = "workers_outstanding";
/// Workers parked (passive, no work to grant) at the master.
pub const GAUGE_WORKERS_PARKED: &str = "workers_parked";
/// Bytes staged across this rank's coalescing send queues.
pub const GAUGE_COALESCE_QUEUE_BYTES: &str = "coalesce_queue_bytes";
/// High-water bytes of this rank's alignment scratch buffers.
pub const GAUGE_ALIGN_SCRATCH_BYTES: &str = "align_scratch_bytes";
/// Cumulative artifact-cache bytes moved (read + written) by the run.
pub const GAUGE_CACHE_BYTES: &str = "cache_bytes";

// ---- trace event names ----------------------------------------------------

/// Blocked in `recv` on an empty channel (span, category `comm`).
pub const EV_WAIT: &str = "wait";
/// Blocked in a barrier (span, category `comm`).
pub const EV_BARRIER: &str = "barrier";
/// One wire message sent (instant, category `comm`; args tag/bytes).
pub const EV_SEND: &str = "send";
/// One logical message delivered (instant, category `comm`).
pub const EV_RECV: &str = "recv";
/// A coalescing queue flushed into an envelope (instant, `comm`).
pub const EV_COALESCE_FLUSH: &str = "coalesce_flush";
/// Master handled an AR report (instant, category `master`).
pub const EV_HANDLE_AR: &str = "handle_ar";
/// Master handled an NP report (instant, category `master`).
pub const EV_HANDLE_NP: &str = "handle_np";
/// Master answering completed rounds / feeding parked workers (span).
pub const EV_DISPATCH: &str = "dispatch";
/// Master parked a passive worker (instant; arg worker).
pub const EV_PARK: &str = "park";
/// Master revived a parked worker with pending work (instant).
pub const EV_UNPARK: &str = "unpark";
/// Worker computing its allocated alignment batch (span, `align`).
pub const EV_ALIGN_BATCH: &str = "align_batch";
/// Per-batch DP-cell split (instant, category `align`; args phase1/phase2).
pub const EV_ALIGN_CELLS: &str = "align_cells";
/// Worker generating the requested pairs (span, category `worker`).
pub const EV_GENERATE: &str = "generate";
/// GST: bucketing own suffixes (span, category `gst`).
pub const EV_GST_BUCKET: &str = "gst_bucket";
/// GST: suffix redistribution all-to-all (span, category `gst`).
pub const EV_GST_REDISTRIBUTE: &str = "gst_redistribute";
/// GST: fetching foreign fragments (span, category `gst`).
pub const EV_GST_FETCH: &str = "gst_fetch";
/// GST: building the local forest (span, category `gst`).
pub const EV_GST_BUILD: &str = "gst_build";
/// Worker assembling one cluster (span, category `assemble`; arg reads).
pub const EV_ASSEMBLE_CLUSTER: &str = "assemble_cluster";
/// Worker encoding one cluster's contigs for shipment (instant,
/// category `assemble`; arg bytes).
pub const EV_ASSEMBLE_SHIP: &str = "assemble_ship";

// ---- fault / recovery trace event names ------------------------------------

/// The fault plan killed this rank (instant, category `fault`; arg
/// event = the rank-local event count it tripped at).
pub const EV_FAULT_KILL: &str = "fault_kill";
/// The fault plan discarded a message at the sender (instant,
/// category `fault`; args dst/tag).
pub const EV_FAULT_DROP: &str = "fault_drop";
/// The fault plan held a message back (instant, category `fault`;
/// args dst/tag).
pub const EV_FAULT_DELAY: &str = "fault_delay";
/// A peer's death notice arrived (instant, category `fault`; arg peer).
pub const EV_RANK_DEAD: &str = "rank_dead";
/// Master re-queued a dead worker's outstanding leases (instant,
/// category `fault`; args worker/tasks).
pub const EV_RECOVER_LEASES: &str = "recover_leases";
/// Master assigned a dead worker's generator scope to a survivor
/// (instant, category `fault`; args dead/adopter).
pub const EV_ADOPT_SCOPE: &str = "adopt_scope";
/// Master declared a silent worker dead via the stall-timeout
/// liveness check (instant, category `fault`; arg worker).
pub const EV_LIVENESS_DECLARE: &str = "liveness_declare";
/// Master wrote a checkpoint snapshot (instant, category `fault`;
/// arg bytes).
pub const EV_CHECKPOINT: &str = "checkpoint";
/// Master discarded a message from a dead-declared rank or a result
/// report whose lease is no longer outstanding — the replay dedup
/// (instant, category `fault`; args src/tag or src/lease).
pub const EV_STALE_MSG: &str = "stale_msg";
/// Worker rebuilt a dead peer's generator scope from the shared input
/// (span, category `fault`; arg dead rank).
pub const EV_ADOPT_REBUILD: &str = "adopt_rebuild";
