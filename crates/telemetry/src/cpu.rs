//! Thread CPU-time sampling.

/// CPU time consumed by the *calling thread* so far, in seconds.
///
/// Ranks are threads that may timeshare a smaller number of physical
/// cores; wall-clock intervals then overstate a rank's computation.
/// Thread CPU time is immune to oversubscription, so per-rank compute
/// costs stay meaningful on any host. Linux-specific
/// (`/proc/thread-self/stat`, utime + stime at the conventional 100 Hz
/// tick); returns 0.0 if the proc file cannot be read.
pub fn thread_cpu_seconds() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return 0.0;
    };
    // The comm field "(...)" may contain spaces; parse after the last ')'.
    let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
        return 0.0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // After the comm field: state is index 0, utime index 11, stime 12.
    let utime: u64 = fields.get(11).and_then(|s| s.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.get(12).and_then(|s| s.parse().ok()).unwrap_or(0);
    (utime + stime) as f64 / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_advances_under_load() {
        let before = thread_cpu_seconds();
        // Burn enough CPU to tick the 100 Hz clock at least once.
        let mut acc = 0u64;
        while thread_cpu_seconds() - before < 0.02 {
            for i in 0..100_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
        }
        std::hint::black_box(acc);
        assert!(thread_cpu_seconds() >= before + 0.02);
    }
}
