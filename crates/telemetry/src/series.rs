//! Periodic gauge sampling: per-rank time series over the shared trace
//! epoch.
//!
//! A [`GaugeSampler`] is the time-series sibling of [`crate::Tracer`]:
//! one per rank, fed from the hot loops (master pump, comm staging,
//! worker batches) and rate-limited so instrumentation points can call
//! [`GaugeSampler::sample`] every iteration without flooding the
//! buffers. Timestamps come from the same [`TraceSpec`] epoch as trace
//! events, so gauge curves align with the event tracks in the Perfetto
//! export (`ph: "C"` counter tracks) and in the analyzer.
//!
//! Invariants mirror the tracer's: buffers are bounded (overflow counts
//! into `dropped`, never reallocates), the disabled path is one branch
//! and nothing else (measured in `disabled_sampler_off_path_is_cheap`),
//! and the sampler's own cost on the enabled path is accounted in
//! `overhead_ns` instead of silently polluting the measurement.

use crate::json::Json;
use crate::trace::TraceSpec;
use std::time::Instant;

/// Default minimum spacing between recorded samples of one gauge.
pub const DEFAULT_SAMPLE_INTERVAL_NS: u64 = 1_000_000;

/// Default per-gauge sample capacity (samples, not bytes).
pub const DEFAULT_SAMPLES_PER_GAUGE: usize = 8192;

/// Handle returned by [`GaugeSampler::register`]; index into the
/// sampler's gauge table (stable for the sampler's lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

struct GaugeState {
    name: &'static str,
    samples: Vec<(u64, u64)>,
    next_due_ns: u64,
    dropped: u64,
}

/// Per-rank gauge sink: named series of `(ts_ns, value)` samples with
/// per-gauge rate limiting and bounded buffers. All methods take
/// `&mut self` — a rank is single-threaded, exactly like its `Comm`.
pub struct GaugeSampler {
    enabled: bool,
    epoch: Instant,
    interval_ns: u64,
    cap: usize,
    rank: usize,
    label: String,
    gauges: Vec<GaugeState>,
    overhead_ns: u64,
}

impl TraceSpec {
    /// Build the gauge sampler for one rank, sharing this spec's epoch
    /// with every tracer of the run — sampling is on exactly when
    /// tracing is.
    pub fn sampler(&self, rank: usize, label: &str) -> GaugeSampler {
        GaugeSampler {
            enabled: self.enabled,
            epoch: self.epoch_instant(),
            interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
            cap: if self.enabled { DEFAULT_SAMPLES_PER_GAUGE } else { 0 },
            rank,
            label: label.to_string(),
            gauges: Vec::new(),
            overhead_ns: 0,
        }
    }
}

impl GaugeSampler {
    /// A permanently cheap no-op sampler (the default inside `Comm`).
    pub fn disabled() -> GaugeSampler {
        TraceSpec::off().sampler(0, "")
    }

    /// Is this sampler recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Override the per-gauge rate limit (tests and slow-changing
    /// gauges; the default suits per-iteration hot-loop calls).
    pub fn set_interval_ns(&mut self, ns: u64) {
        self.interval_ns = ns;
    }

    /// Register a gauge by name, returning its sampling handle. A name
    /// already registered returns the existing handle, so independent
    /// call sites can share a series.
    pub fn register(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(GaugeState {
            name,
            samples: Vec::with_capacity(self.cap),
            next_due_ns: 0,
            dropped: 0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Record `value` for the gauge unless its rate limit or buffer
    /// bound says otherwise. Hot-loop safe: the disabled path is one
    /// branch, and an enabled call inside the rate-limit window is one
    /// clock read plus a compare.
    #[inline]
    pub fn sample(&mut self, id: GaugeId, value: u64) {
        if !self.enabled {
            return;
        }
        self.record(id, value, false);
    }

    /// As [`GaugeSampler::sample`], bypassing the rate limit — for
    /// gauges fed from rare events (cache loads, stage boundaries)
    /// where every point matters.
    #[inline]
    pub fn sample_now(&mut self, id: GaugeId, value: u64) {
        if !self.enabled {
            return;
        }
        self.record(id, value, true);
    }

    fn record(&mut self, id: GaugeId, value: u64, force: bool) {
        let now = self.epoch.elapsed().as_nanos() as u64;
        let Some(g) = self.gauges.get_mut(id.0) else {
            return;
        };
        if !force && now < g.next_due_ns {
            return;
        }
        g.next_due_ns = now + self.interval_ns;
        if g.samples.len() >= self.cap {
            g.dropped += 1;
            return;
        }
        g.samples.push((now, value));
        // Self-time of the push, charged to the sampler, not the rank.
        self.overhead_ns += (self.epoch.elapsed().as_nanos() as u64).saturating_sub(now);
    }

    /// Nanoseconds this sampler spent recording (enabled pushes only).
    pub fn overhead_ns(&self) -> u64 {
        self.overhead_ns
    }

    /// Samples dropped on buffer overflow, across gauges.
    pub fn dropped_samples(&self) -> u64 {
        self.gauges.iter().map(|g| g.dropped).sum()
    }

    /// Finish recording, yielding the immutable per-rank series.
    pub fn finish(self) -> RankSeries {
        RankSeries {
            rank: self.rank,
            label: self.label,
            overhead_ns: self.overhead_ns,
            gauges: self
                .gauges
                .into_iter()
                .map(|g| GaugeSeries { name: g.name.to_string(), samples: g.samples, dropped: g.dropped })
                .collect(),
        }
    }

    /// Take the recorded series out, leaving a disabled sampler behind
    /// (for owners that cannot be consumed, like `Comm`).
    pub fn take(&mut self) -> RankSeries {
        std::mem::replace(self, GaugeSampler::disabled()).finish()
    }
}

/// One gauge's finished time series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GaugeSeries {
    /// Gauge name (see the `GAUGE_*` constants in [`crate::names`]).
    pub name: String,
    /// `(ts_ns, value)` samples in record order (timestamps ascend).
    pub samples: Vec<(u64, u64)>,
    /// Samples discarded on buffer overflow.
    pub dropped: u64,
}

impl GaugeSeries {
    /// Largest sampled value, zero when empty.
    pub fn max_value(&self) -> u64 {
        self.samples.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("dropped", Json::Num(self.dropped as f64)),
            (
                "samples",
                Json::Arr(
                    self.samples
                        .iter()
                        .map(|&(ts, v)| Json::Arr(vec![Json::Num(ts as f64), Json::Num(v as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> GaugeSeries {
        GaugeSeries {
            name: v.get("name").and_then(Json::as_str).unwrap_or_default().to_string(),
            dropped: v.get("dropped").and_then(Json::as_u64).unwrap_or(0),
            samples: v
                .get("samples")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .filter_map(|pair| {
                    let arr = pair.as_arr()?;
                    Some((arr.first()?.as_u64()?, arr.get(1)?.as_u64()?))
                })
                .collect(),
        }
    }
}

/// One rank's finished gauge series, with the sampler's self-time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankSeries {
    /// Rank id (same id space as the rank's trace track).
    pub rank: usize,
    /// Role label (`"master"`, `"worker"`, `"pipeline"`, …).
    pub label: String,
    /// Nanoseconds the sampler itself spent recording.
    pub overhead_ns: u64,
    /// The gauges, in registration order.
    pub gauges: Vec<GaugeSeries>,
}

impl RankSeries {
    /// No gauge recorded any sample.
    pub fn is_empty(&self) -> bool {
        self.gauges.iter().all(|g| g.samples.is_empty())
    }

    /// Samples dropped on buffer overflow, across gauges.
    pub fn dropped_samples(&self) -> u64 {
        self.gauges.iter().map(|g| g.dropped).sum()
    }

    /// Gauge lookup by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// JSON encoding (schema-v3 `series` entries).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::Num(self.rank as f64)),
            ("label", Json::Str(self.label.clone())),
            ("overhead_ns", Json::Num(self.overhead_ns as f64)),
            ("gauges", Json::Arr(self.gauges.iter().map(GaugeSeries::to_json).collect())),
        ])
    }

    /// Decode from JSON produced by [`RankSeries::to_json`].
    pub fn from_json(v: &Json) -> RankSeries {
        RankSeries {
            rank: v.get("rank").and_then(Json::as_u64).unwrap_or(0) as usize,
            label: v.get("label").and_then(Json::as_str).unwrap_or_default().to_string(),
            overhead_ns: v.get("overhead_ns").and_then(Json::as_u64).unwrap_or(0),
            gauges: v
                .get("gauges")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(GaugeSeries::from_json)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn disabled_sampler_records_nothing() {
        let mut s = GaugeSampler::disabled();
        let id = s.register(names::GAUGE_PENDING_TASKS);
        s.sample(id, 5);
        s.sample_now(id, 6);
        let rs = s.finish();
        assert!(rs.is_empty());
        assert_eq!(rs.dropped_samples(), 0);
    }

    /// Mirror of the tracer's budget test: a disabled sampler in a hot
    /// loop must cost one branch — 10 M calls in well under a second
    /// means ≪ 100 ns per call.
    #[test]
    fn disabled_sampler_off_path_is_cheap() {
        let mut s = GaugeSampler::disabled();
        let id = s.register(names::GAUGE_PENDING_TASKS);
        let start = Instant::now();
        for i in 0..10_000_000u64 {
            s.sample(id, i);
        }
        let per_call_ns = start.elapsed().as_nanos() as f64 / 1e7;
        assert!(s.finish().is_empty());
        assert!(per_call_ns < 100.0, "disabled sample call costs {per_call_ns:.1} ns");
    }

    #[test]
    fn rate_limit_thins_hot_loop_samples() {
        let spec = TraceSpec::on();
        let mut s = spec.sampler(0, "master");
        s.set_interval_ns(u64::MAX / 2); // nothing else gets through
        let id = s.register(names::GAUGE_PENDING_TASKS);
        for i in 0..1000 {
            s.sample(id, i);
        }
        let rs = s.finish();
        assert_eq!(rs.gauges[0].samples.len(), 1, "one sample per interval");
        assert_eq!(rs.dropped_samples(), 0, "rate-limited calls are skips, not drops");
    }

    #[test]
    fn sample_now_bypasses_rate_limit_and_overflow_counts_drops() {
        let spec = TraceSpec::on();
        let mut s = spec.sampler(2, "pipeline");
        s.cap = 4;
        let id = s.register(names::GAUGE_CACHE_BYTES);
        let cap_before = s.gauges[0].samples.capacity();
        for i in 0..10 {
            s.sample_now(id, i);
        }
        assert_eq!(s.gauges[0].samples.len(), 4, "buffer is bounded");
        assert_eq!(s.dropped_samples(), 6, "overflow is counted");
        assert_eq!(s.gauges[0].samples.capacity(), cap_before, "no reallocation on overflow");
        assert!(s.overhead_ns() > 0, "enabled pushes account their self-time");
    }

    #[test]
    fn register_is_idempotent_per_name() {
        let spec = TraceSpec::on();
        let mut s = spec.sampler(0, "m");
        let a = s.register(names::GAUGE_INBOX_DEPTH);
        let b = s.register(names::GAUGE_INBOX_DEPTH);
        assert_eq!(a, b);
        assert_eq!(s.gauges.len(), 1);
    }

    #[test]
    fn sampler_shares_the_trace_epoch() {
        let spec = TraceSpec::on();
        let mut tracer = spec.tracer(0, "m");
        let mut s = spec.sampler(0, "m");
        let id = s.register(names::GAUGE_PENDING_TASKS);
        tracer.instant(crate::trace::TraceCategory::Master, names::EV_DISPATCH);
        s.sample_now(id, 1);
        let ev_ts = tracer.events()[0].ts_ns;
        let (sample_ts, _) = s.finish().gauges[0].samples[0];
        // The sample came after the event on the same clock; both are
        // tiny offsets from the shared epoch (well under a second).
        assert!(sample_ts >= ev_ts);
        assert!(sample_ts - ev_ts < 1_000_000_000);
    }

    #[test]
    fn series_json_round_trip_is_exact() {
        let rs = RankSeries {
            rank: 3,
            label: "worker".into(),
            overhead_ns: 12_345,
            gauges: vec![
                GaugeSeries {
                    name: names::GAUGE_COALESCE_QUEUE_BYTES.into(),
                    samples: vec![(0, 0), (1_000, 512), (2_000, 64)],
                    dropped: 2,
                },
                GaugeSeries { name: names::GAUGE_ALIGN_SCRATCH_BYTES.into(), samples: vec![], dropped: 0 },
            ],
        };
        let back = RankSeries::from_json(&rs.to_json());
        assert_eq!(back, rs);
        assert_eq!(back.gauge(names::GAUGE_COALESCE_QUEUE_BYTES).unwrap().max_value(), 512);
        assert!(back.gauge("missing").is_none());
    }

    #[test]
    fn take_leaves_a_disabled_sampler() {
        let spec = TraceSpec::on();
        let mut s = spec.sampler(1, "worker");
        let id = s.register(names::GAUGE_ALIGN_SCRATCH_BYTES);
        s.sample_now(id, 9);
        let rs = s.take();
        assert_eq!(rs.gauges[0].samples.len(), 1);
        assert!(!s.is_enabled());
        s.sample_now(id, 10); // harmless no-op on the husk
    }
}
