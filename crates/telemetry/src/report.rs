//! The immutable run report: spans + counters + per-rank channels,
//! with a stable JSON encoding (emit *and* parse, so reports can be
//! archived, diffed, and re-read by tooling).

use crate::json::{Json, JsonError};
use crate::span::Span;
use crate::trace::IdleGapHistogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the `pgasm.run_report` JSON schema this crate writes.
///
/// History: 1 = PR 1 format (implicit, stored under `"version"`);
/// 2 = adds `schema_version`, per-rank `idle_gaps`, and the run-level
/// `trace` summary; 3 = adds the top-level `series` array of per-rank
/// gauge time series (absent ⇒ no sampling — v2 documents parse with
/// an empty list); 4 = adds the optional top-level `faults` section
/// (absent ⇒ the run saw no fault injection, recovery, or
/// checkpointing — v3 documents parse with `faults: None`). Parsers
/// accept any version ≥ 1 and ignore fields they don't know (forward
/// compatibility is tested).
pub const SCHEMA_VERSION: u32 = 4;

/// Traffic and modelled cost for one message tag on one rank.
///
/// Collectives and the master–worker protocol each use distinct tags,
/// so per-tag rows double as a per-primitive communication breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagStat {
    /// The raw tag value.
    pub tag: u32,
    /// Human-readable tag name (`"bcast"`, `"w2m"`, …).
    pub label: String,
    /// Messages sent under this tag.
    pub msgs_sent: u64,
    /// Payload bytes sent under this tag.
    pub bytes_sent: u64,
    /// Messages received under this tag.
    pub msgs_recv: u64,
    /// Payload bytes received under this tag.
    pub bytes_recv: u64,
    /// α–β modelled seconds for this tag's traffic on this rank.
    pub modelled_seconds: f64,
}

impl TagStat {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tag", Json::Num(self.tag as f64)),
            ("label", Json::Str(self.label.clone())),
            ("msgs_sent", Json::Num(self.msgs_sent as f64)),
            ("bytes_sent", Json::Num(self.bytes_sent as f64)),
            ("msgs_recv", Json::Num(self.msgs_recv as f64)),
            ("bytes_recv", Json::Num(self.bytes_recv as f64)),
            ("modelled_seconds", Json::Num(self.modelled_seconds)),
        ])
    }

    fn from_json(v: &Json) -> Result<TagStat, JsonError> {
        Ok(TagStat {
            tag: v.get("tag").and_then(Json::as_u64).unwrap_or(0) as u32,
            label: v.get("label").and_then(Json::as_str).unwrap_or_default().to_string(),
            msgs_sent: v.get("msgs_sent").and_then(Json::as_u64).unwrap_or(0),
            bytes_sent: v.get("bytes_sent").and_then(Json::as_u64).unwrap_or(0),
            msgs_recv: v.get("msgs_recv").and_then(Json::as_u64).unwrap_or(0),
            bytes_recv: v.get("bytes_recv").and_then(Json::as_u64).unwrap_or(0),
            modelled_seconds: v.get("modelled_seconds").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

/// One rank's channel in the report: compute, idleness, its own
/// counters, and its per-tag communication rows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RankReport {
    /// Rank id within the parallel section.
    pub rank: usize,
    /// Role label (`"master"`, `"worker"`, `"gst"`, …).
    pub role: String,
    /// Thread CPU seconds this rank consumed.
    pub cpu_seconds: f64,
    /// Seconds blocked waiting (recv wait + barriers).
    pub idle_seconds: f64,
    /// Rank-local counters (pairs generated/aligned/accepted, batch
    /// round-trips, peak queue depth, …).
    pub counters: BTreeMap<String, u64>,
    /// Per-tag traffic rows, ascending by tag.
    pub comm: Vec<TagStat>,
    /// Idle-gap histogram derived from this rank's trace (present only
    /// when the run was traced).
    pub idle_gaps: Option<IdleGapHistogram>,
}

impl RankReport {
    /// Counter lookup, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total modelled communication seconds across tags.
    pub fn modelled_comm_seconds(&self) -> f64 {
        self.comm.iter().map(|t| t.modelled_seconds).sum()
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("rank", Json::Num(self.rank as f64)),
            ("role", Json::Str(self.role.clone())),
            ("cpu_seconds", Json::Num(self.cpu_seconds)),
            ("idle_seconds", Json::Num(self.idle_seconds)),
            ("counters", counters_to_json(&self.counters)),
            ("comm", Json::Arr(self.comm.iter().map(TagStat::to_json).collect())),
        ];
        if let Some(h) = &self.idle_gaps {
            fields.push(("idle_gaps", h.to_json()));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<RankReport, JsonError> {
        Ok(RankReport {
            rank: v.get("rank").and_then(Json::as_u64).unwrap_or(0) as usize,
            role: v.get("role").and_then(Json::as_str).unwrap_or_default().to_string(),
            cpu_seconds: v.get("cpu_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            idle_seconds: v.get("idle_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            counters: counters_from_json(v.get("counters"))?,
            comm: v
                .get("comm")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(TagStat::from_json)
                .collect::<Result<_, _>>()?,
            idle_gaps: v.get("idle_gaps").map(IdleGapHistogram::from_json),
        })
    }
}

/// Run-level trace digest folded into the report when a run was traced:
/// master occupancy over time windows plus the drop counter. The full
/// event stream lives in the separate Chrome trace JSON artifact.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Width, in seconds, of each occupancy window.
    pub window_seconds: f64,
    /// Busy fraction (1 − blocked share) of the master track per
    /// window, in time order. Empty when no master track was traced.
    pub master_occupancy: Vec<f64>,
    /// Events dropped across all ranks (buffer overflow).
    pub dropped_events: u64,
}

impl TraceSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("window_seconds", Json::Num(self.window_seconds)),
            ("master_occupancy", Json::Arr(self.master_occupancy.iter().map(|&o| Json::Num(o)).collect())),
            ("dropped_events", Json::Num(self.dropped_events as f64)),
        ])
    }

    fn from_json(v: &Json) -> TraceSummary {
        TraceSummary {
            window_seconds: v.get("window_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            master_occupancy: v
                .get("master_occupancy")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .filter_map(Json::as_f64)
                .collect(),
            dropped_events: v.get("dropped_events").and_then(Json::as_u64).unwrap_or(0),
        }
    }
}

/// Fault-injection and recovery digest for one run (schema v4).
/// Present only when the run injected faults, recovered leases, or
/// wrote checkpoints — a clean run omits the section entirely, so
/// fault-free reports are byte-identical to what a v3 writer produced
/// modulo the version number.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Ranks the fault plan killed.
    pub kills_injected: u64,
    /// Worker ranks the master marked dead (notice or liveness).
    pub dead_ranks: u64,
    /// Tasks re-queued from dead workers' leases and re-executed.
    pub recovered_tasks: u64,
    /// Messages the fault plan discarded at the sender.
    pub msgs_dropped: u64,
    /// Messages the fault plan held back and delivered late.
    pub msgs_delayed: u64,
    /// Bytes of master checkpoint snapshots written.
    pub ckpt_bytes: u64,
}

impl FaultSummary {
    /// True when nothing fault-related happened — the report omits the
    /// section.
    pub fn is_empty(&self) -> bool {
        *self == FaultSummary::default()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kills_injected", Json::Num(self.kills_injected as f64)),
            ("dead_ranks", Json::Num(self.dead_ranks as f64)),
            ("recovered_tasks", Json::Num(self.recovered_tasks as f64)),
            ("msgs_dropped", Json::Num(self.msgs_dropped as f64)),
            ("msgs_delayed", Json::Num(self.msgs_delayed as f64)),
            ("ckpt_bytes", Json::Num(self.ckpt_bytes as f64)),
        ])
    }

    fn from_json(v: &Json) -> FaultSummary {
        let n = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        FaultSummary {
            kills_injected: n("kills_injected"),
            dead_ranks: n("dead_ranks"),
            recovered_tasks: n("recovered_tasks"),
            msgs_dropped: n("msgs_dropped"),
            msgs_delayed: n("msgs_delayed"),
            ckpt_bytes: n("ckpt_bytes"),
        }
    }
}

fn counters_to_json(counters: &BTreeMap<String, u64>) -> Json {
    Json::Obj(counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect())
}

fn counters_from_json(v: Option<&Json>) -> Result<BTreeMap<String, u64>, JsonError> {
    let mut out = BTreeMap::new();
    if let Some(obj) = v.and_then(Json::as_obj) {
        for (k, val) in obj {
            out.insert(
                k.clone(),
                val.as_u64().ok_or(JsonError {
                    msg: format!("counter '{k}' is not a non-negative integer"),
                    at: 0,
                })?,
            );
        }
    }
    Ok(out)
}

/// The complete, immutable record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// JSON schema version this report was written with (see
    /// [`SCHEMA_VERSION`]); 1 for reports predating the field.
    pub schema_version: u32,
    /// Run label (command line, experiment id, …).
    pub label: String,
    /// Top-level span trees, in execution order.
    pub spans: Vec<Span>,
    /// Run-global counters.
    pub counters: BTreeMap<String, u64>,
    /// Per-rank channels from the run's parallel section.
    pub ranks: Vec<RankReport>,
    /// Trace-derived digest; present only when the run was traced.
    pub trace: Option<TraceSummary>,
    /// Per-rank gauge time series (schema v3; empty when the run
    /// sampled nothing — and for every pre-v3 document).
    pub series: Vec<crate::series::RankSeries>,
    /// Fault-injection / recovery digest (schema v4); absent for clean
    /// runs and for every pre-v4 document.
    pub faults: Option<FaultSummary>,
}

impl RunReport {
    /// Span lookup by `/`-separated path from a root span, e.g.
    /// `"pipeline/cluster"`.
    pub fn span(&self, path: &str) -> Option<&Span> {
        self.spans.iter().find_map(|s| s.find(path))
    }

    /// Wall seconds of a span path, zero when absent (convenient for
    /// table rows).
    pub fn wall(&self, path: &str) -> f64 {
        self.span(path).map(|s| s.wall_seconds).unwrap_or(0.0)
    }

    /// Counter lookup, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Largest idle share among worker ranks: idle / (cpu + idle).
    pub fn max_idle_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| {
                let busy = r.cpu_seconds + r.idle_seconds;
                if busy > 0.0 {
                    r.idle_seconds / busy
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// Structured JSON value.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("format", Json::Str("pgasm.run_report".into())),
            ("schema_version", Json::Num(self.schema_version as f64)),
            // Legacy alias kept so version-1 readers still recognise us.
            ("version", Json::Num(self.schema_version as f64)),
            ("label", Json::Str(self.label.clone())),
            ("spans", Json::Arr(self.spans.iter().map(Span::to_json).collect())),
            ("counters", counters_to_json(&self.counters)),
            ("ranks", Json::Arr(self.ranks.iter().map(RankReport::to_json).collect())),
        ];
        if let Some(t) = &self.trace {
            fields.push(("trace", t.to_json()));
        }
        if !self.series.is_empty() {
            fields.push((
                "series",
                Json::Arr(self.series.iter().map(crate::series::RankSeries::to_json).collect()),
            ));
        }
        if let Some(f) = &self.faults {
            fields.push(("faults", f.to_json()));
        }
        Json::obj(fields)
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Decode a report from its JSON value.
    pub fn from_json(v: &Json) -> Result<RunReport, JsonError> {
        if v.get("format").and_then(Json::as_str) != Some("pgasm.run_report") {
            return Err(JsonError { msg: "not a pgasm.run_report document".into(), at: 0 });
        }
        // `schema_version` appeared in v2; older documents carry the
        // legacy `version` number only. Unknown fields are ignored, so
        // documents from *newer* writers still parse.
        let schema_version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .or_else(|| v.get("version").and_then(Json::as_u64))
            .unwrap_or(1) as u32;
        Ok(RunReport {
            schema_version,
            label: v.get("label").and_then(Json::as_str).unwrap_or_default().to_string(),
            spans: v
                .get("spans")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(Span::from_json)
                .collect::<Result<_, _>>()?,
            counters: counters_from_json(v.get("counters"))?,
            ranks: v
                .get("ranks")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(RankReport::from_json)
                .collect::<Result<_, _>>()?,
            trace: v.get("trace").map(TraceSummary::from_json),
            series: v
                .get("series")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(crate::series::RankSeries::from_json)
                .collect(),
            faults: v.get("faults").map(FaultSummary::from_json),
        })
    }

    /// Parse a JSON document string into a report.
    pub fn from_json_str(s: &str) -> Result<RunReport, JsonError> {
        RunReport::from_json(&Json::parse(s)?)
    }

    /// Write the pretty JSON document to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            label: "unit".into(),
            spans: vec![Span {
                name: "pipeline".into(),
                wall_seconds: 2.0,
                cpu_seconds: 1.5,
                children: vec![
                    Span { name: "preprocess".into(), wall_seconds: 0.5, cpu_seconds: 0.5, children: vec![] },
                    Span { name: "cluster".into(), wall_seconds: 1.5, cpu_seconds: 1.0, children: vec![] },
                ],
            }],
            counters: BTreeMap::from([
                ("pairs_generated".to_string(), 120u64),
                ("pairs_aligned".to_string(), 80),
                ("pairs_accepted".to_string(), 33),
            ]),
            ranks: vec![RankReport {
                rank: 1,
                role: "worker".into(),
                cpu_seconds: 0.75,
                idle_seconds: 0.25,
                counters: BTreeMap::from([("batches".to_string(), 9u64)]),
                comm: vec![TagStat {
                    tag: 1,
                    label: "w2m".into(),
                    msgs_sent: 9,
                    bytes_sent: 1800,
                    msgs_recv: 10,
                    bytes_recv: 2000,
                    modelled_seconds: 1e-4,
                }],
                idle_gaps: Some(IdleGapHistogram {
                    bounds_ns: crate::trace::IDLE_GAP_BOUNDS_NS.to_vec(),
                    counts: vec![0, 3, 1, 0, 0, 0, 0],
                    total_blocked_ns: 250_000_000,
                    max_gap_ns: 140_000,
                }),
            }],
            trace: Some(TraceSummary {
                window_seconds: 0.1,
                master_occupancy: vec![0.9, 0.8, 0.95],
                dropped_events: 2,
            }),
            series: vec![crate::series::RankSeries {
                rank: 1,
                label: "worker".into(),
                overhead_ns: 777,
                gauges: vec![crate::series::GaugeSeries {
                    name: crate::names::GAUGE_ALIGN_SCRATCH_BYTES.into(),
                    samples: vec![(10, 4096), (1_010, 8192)],
                    dropped: 1,
                }],
            }],
            faults: Some(FaultSummary {
                kills_injected: 1,
                dead_ranks: 1,
                recovered_tasks: 12,
                msgs_dropped: 2,
                msgs_delayed: 1,
                ckpt_bytes: 4096,
            }),
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample();
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn span_path_and_counter_lookups() {
        let report = sample();
        assert_eq!(report.wall("pipeline/cluster"), 1.5);
        assert_eq!(report.wall("pipeline/missing"), 0.0);
        assert_eq!(report.counter("pairs_accepted"), 33);
        assert_eq!(report.ranks[0].counter("batches"), 9);
        assert!((report.ranks[0].modelled_comm_seconds() - 1e-4).abs() < 1e-12);
        assert!((report.max_idle_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(RunReport::from_json_str("{\"format\": \"other\"}").is_err());
        assert!(RunReport::from_json_str("[1,2]").is_err());
    }

    #[test]
    fn schema_version_round_trips_and_legacy_defaults_to_one() {
        let text = sample().to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        // A PR-1-era document: no schema_version, numeric "version".
        let legacy = "{\"format\": \"pgasm.run_report\", \"version\": 1, \"label\": \"old\"}";
        let old = RunReport::from_json_str(legacy).unwrap();
        assert_eq!(old.schema_version, 1);
        assert_eq!(old.label, "old");
        assert!(old.trace.is_none());
    }

    #[test]
    fn v2_reports_without_series_still_parse() {
        // A v2-era document: trace summary but no `series` field.
        let v2 = concat!(
            "{\"format\": \"pgasm.run_report\", \"schema_version\": 2, \"version\": 2, ",
            "\"label\": \"v2\", \"counters\": {\"merges\": 3}, ",
            "\"trace\": {\"window_seconds\": 0.1, \"master_occupancy\": [0.5], \"dropped_events\": 0}}"
        );
        let report = RunReport::from_json_str(v2).unwrap();
        assert_eq!(report.schema_version, 2);
        assert_eq!(report.counter("merges"), 3);
        assert!(report.series.is_empty(), "absent series parses as empty");
        assert!(report.trace.is_some());
    }

    #[test]
    fn v3_series_round_trips_exactly() {
        let report = sample();
        let back = RunReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert_eq!(back.series, report.series);
        let g = back.series[0].gauge(crate::names::GAUGE_ALIGN_SCRATCH_BYTES).unwrap();
        assert_eq!(g.samples, vec![(10, 4096), (1_010, 8192)]);
        assert_eq!(g.dropped, 1);
        assert_eq!(back.series[0].overhead_ns, 777);
        // A run that sampled nothing writes no `series` key at all.
        let mut bare = sample();
        bare.series.clear();
        assert!(!bare.to_json_string().contains("\"series\""));
        assert!(RunReport::from_json_str(&bare.to_json_string()).unwrap().series.is_empty());
    }

    #[test]
    fn v4_faults_section_round_trips_and_v3_documents_still_parse() {
        // v4 round trip: the section survives encode → decode exactly.
        let report = sample();
        let back = RunReport::from_json_str(&report.to_json_string()).unwrap();
        assert_eq!(back.schema_version, 4);
        assert_eq!(back.faults, report.faults);
        let f = back.faults.as_ref().unwrap();
        assert_eq!(f.dead_ranks, 1);
        assert_eq!(f.recovered_tasks, 12);
        assert_eq!(f.ckpt_bytes, 4096);
        // A clean run writes no `faults` key at all.
        let mut clean = sample();
        clean.faults = None;
        assert!(!clean.to_json_string().contains("\"faults\""));
        assert!(RunReport::from_json_str(&clean.to_json_string()).unwrap().faults.is_none());
        // A v3-era document (no faults section) parses with None and
        // keeps everything else — the back-compat contract.
        let v3 = concat!(
            "{\"format\": \"pgasm.run_report\", \"schema_version\": 3, \"version\": 3, ",
            "\"label\": \"v3\", \"counters\": {\"merges\": 5}, ",
            "\"series\": [{\"rank\": 0, \"label\": \"master\", \"overhead_ns\": 1, \"gauges\": []}]}"
        );
        let old = RunReport::from_json_str(v3).unwrap();
        assert_eq!(old.schema_version, 3);
        assert_eq!(old.counter("merges"), 5);
        assert_eq!(old.series.len(), 1);
        assert!(old.faults.is_none(), "pre-v4 documents have no faults section");
        // And a v3 document re-encoded by this writer still parses as
        // its own round trip (field set preserved, faults still absent).
        let re = RunReport::from_json_str(&old.to_json_string()).unwrap();
        assert_eq!(re, old);
    }

    #[test]
    fn forward_compat_ignores_unknown_fields() {
        // A hypothetical v4 writer added fields we don't know about;
        // parsing must still succeed and keep everything we do know.
        let future = concat!(
            "{\"format\": \"pgasm.run_report\", \"schema_version\": 4, \"version\": 4, ",
            "\"label\": \"future\", \"counters\": {\"merges\": 7}, ",
            "\"new_top_level_blob\": {\"x\": [1, 2, 3]}, ",
            "\"ranks\": [{\"rank\": 0, \"role\": \"master\", \"novel_rank_field\": 42}]}"
        );
        let report = RunReport::from_json_str(future).unwrap();
        assert_eq!(report.schema_version, 4);
        assert_eq!(report.counter("merges"), 7);
        assert_eq!(report.ranks[0].role, "master");
    }
}
