//! The immutable run report: spans + counters + per-rank channels,
//! with a stable JSON encoding (emit *and* parse, so reports can be
//! archived, diffed, and re-read by tooling).

use crate::json::{Json, JsonError};
use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Traffic and modelled cost for one message tag on one rank.
///
/// Collectives and the master–worker protocol each use distinct tags,
/// so per-tag rows double as a per-primitive communication breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagStat {
    /// The raw tag value.
    pub tag: u32,
    /// Human-readable tag name (`"bcast"`, `"w2m"`, …).
    pub label: String,
    /// Messages sent under this tag.
    pub msgs_sent: u64,
    /// Payload bytes sent under this tag.
    pub bytes_sent: u64,
    /// Messages received under this tag.
    pub msgs_recv: u64,
    /// Payload bytes received under this tag.
    pub bytes_recv: u64,
    /// α–β modelled seconds for this tag's traffic on this rank.
    pub modelled_seconds: f64,
}

impl TagStat {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tag", Json::Num(self.tag as f64)),
            ("label", Json::Str(self.label.clone())),
            ("msgs_sent", Json::Num(self.msgs_sent as f64)),
            ("bytes_sent", Json::Num(self.bytes_sent as f64)),
            ("msgs_recv", Json::Num(self.msgs_recv as f64)),
            ("bytes_recv", Json::Num(self.bytes_recv as f64)),
            ("modelled_seconds", Json::Num(self.modelled_seconds)),
        ])
    }

    fn from_json(v: &Json) -> Result<TagStat, JsonError> {
        Ok(TagStat {
            tag: v.get("tag").and_then(Json::as_u64).unwrap_or(0) as u32,
            label: v.get("label").and_then(Json::as_str).unwrap_or_default().to_string(),
            msgs_sent: v.get("msgs_sent").and_then(Json::as_u64).unwrap_or(0),
            bytes_sent: v.get("bytes_sent").and_then(Json::as_u64).unwrap_or(0),
            msgs_recv: v.get("msgs_recv").and_then(Json::as_u64).unwrap_or(0),
            bytes_recv: v.get("bytes_recv").and_then(Json::as_u64).unwrap_or(0),
            modelled_seconds: v.get("modelled_seconds").and_then(Json::as_f64).unwrap_or(0.0),
        })
    }
}

/// One rank's channel in the report: compute, idleness, its own
/// counters, and its per-tag communication rows.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RankReport {
    /// Rank id within the parallel section.
    pub rank: usize,
    /// Role label (`"master"`, `"worker"`, `"gst"`, …).
    pub role: String,
    /// Thread CPU seconds this rank consumed.
    pub cpu_seconds: f64,
    /// Seconds blocked waiting (recv wait + barriers).
    pub idle_seconds: f64,
    /// Rank-local counters (pairs generated/aligned/accepted, batch
    /// round-trips, peak queue depth, …).
    pub counters: BTreeMap<String, u64>,
    /// Per-tag traffic rows, ascending by tag.
    pub comm: Vec<TagStat>,
}

impl RankReport {
    /// Counter lookup, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total modelled communication seconds across tags.
    pub fn modelled_comm_seconds(&self) -> f64 {
        self.comm.iter().map(|t| t.modelled_seconds).sum()
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::Num(self.rank as f64)),
            ("role", Json::Str(self.role.clone())),
            ("cpu_seconds", Json::Num(self.cpu_seconds)),
            ("idle_seconds", Json::Num(self.idle_seconds)),
            ("counters", counters_to_json(&self.counters)),
            ("comm", Json::Arr(self.comm.iter().map(TagStat::to_json).collect())),
        ])
    }

    fn from_json(v: &Json) -> Result<RankReport, JsonError> {
        Ok(RankReport {
            rank: v.get("rank").and_then(Json::as_u64).unwrap_or(0) as usize,
            role: v.get("role").and_then(Json::as_str).unwrap_or_default().to_string(),
            cpu_seconds: v.get("cpu_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            idle_seconds: v.get("idle_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            counters: counters_from_json(v.get("counters"))?,
            comm: v
                .get("comm")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(TagStat::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

fn counters_to_json(counters: &BTreeMap<String, u64>) -> Json {
    Json::Obj(counters.iter().map(|(k, v)| (k.clone(), Json::Num(*v as f64))).collect())
}

fn counters_from_json(v: Option<&Json>) -> Result<BTreeMap<String, u64>, JsonError> {
    let mut out = BTreeMap::new();
    if let Some(obj) = v.and_then(Json::as_obj) {
        for (k, val) in obj {
            out.insert(
                k.clone(),
                val.as_u64().ok_or(JsonError {
                    msg: format!("counter '{k}' is not a non-negative integer"),
                    at: 0,
                })?,
            );
        }
    }
    Ok(out)
}

/// The complete, immutable record of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Run label (command line, experiment id, …).
    pub label: String,
    /// Top-level span trees, in execution order.
    pub spans: Vec<Span>,
    /// Run-global counters.
    pub counters: BTreeMap<String, u64>,
    /// Per-rank channels from the run's parallel section.
    pub ranks: Vec<RankReport>,
}

impl RunReport {
    /// Span lookup by `/`-separated path from a root span, e.g.
    /// `"pipeline/cluster"`.
    pub fn span(&self, path: &str) -> Option<&Span> {
        self.spans.iter().find_map(|s| s.find(path))
    }

    /// Wall seconds of a span path, zero when absent (convenient for
    /// table rows).
    pub fn wall(&self, path: &str) -> f64 {
        self.span(path).map(|s| s.wall_seconds).unwrap_or(0.0)
    }

    /// Counter lookup, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Largest idle share among worker ranks: idle / (cpu + idle).
    pub fn max_idle_fraction(&self) -> f64 {
        self.ranks
            .iter()
            .map(|r| {
                let busy = r.cpu_seconds + r.idle_seconds;
                if busy > 0.0 {
                    r.idle_seconds / busy
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }

    /// Structured JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format", Json::Str("pgasm.run_report".into())),
            ("version", Json::Num(1.0)),
            ("label", Json::Str(self.label.clone())),
            ("spans", Json::Arr(self.spans.iter().map(Span::to_json).collect())),
            ("counters", counters_to_json(&self.counters)),
            ("ranks", Json::Arr(self.ranks.iter().map(RankReport::to_json).collect())),
        ])
    }

    /// Pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Decode a report from its JSON value.
    pub fn from_json(v: &Json) -> Result<RunReport, JsonError> {
        if v.get("format").and_then(Json::as_str) != Some("pgasm.run_report") {
            return Err(JsonError { msg: "not a pgasm.run_report document".into(), at: 0 });
        }
        Ok(RunReport {
            label: v.get("label").and_then(Json::as_str).unwrap_or_default().to_string(),
            spans: v
                .get("spans")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(Span::from_json)
                .collect::<Result<_, _>>()?,
            counters: counters_from_json(v.get("counters"))?,
            ranks: v
                .get("ranks")
                .and_then(Json::as_arr)
                .unwrap_or_default()
                .iter()
                .map(RankReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parse a JSON document string into a report.
    pub fn from_json_str(s: &str) -> Result<RunReport, JsonError> {
        RunReport::from_json(&Json::parse(s)?)
    }

    /// Write the pretty JSON document to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            label: "unit".into(),
            spans: vec![Span {
                name: "pipeline".into(),
                wall_seconds: 2.0,
                cpu_seconds: 1.5,
                children: vec![
                    Span { name: "preprocess".into(), wall_seconds: 0.5, cpu_seconds: 0.5, children: vec![] },
                    Span { name: "cluster".into(), wall_seconds: 1.5, cpu_seconds: 1.0, children: vec![] },
                ],
            }],
            counters: BTreeMap::from([
                ("pairs_generated".to_string(), 120u64),
                ("pairs_aligned".to_string(), 80),
                ("pairs_accepted".to_string(), 33),
            ]),
            ranks: vec![RankReport {
                rank: 1,
                role: "worker".into(),
                cpu_seconds: 0.75,
                idle_seconds: 0.25,
                counters: BTreeMap::from([("batches".to_string(), 9u64)]),
                comm: vec![TagStat {
                    tag: 1,
                    label: "w2m".into(),
                    msgs_sent: 9,
                    bytes_sent: 1800,
                    msgs_recv: 10,
                    bytes_recv: 2000,
                    modelled_seconds: 1e-4,
                }],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample();
        let text = report.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn span_path_and_counter_lookups() {
        let report = sample();
        assert_eq!(report.wall("pipeline/cluster"), 1.5);
        assert_eq!(report.wall("pipeline/missing"), 0.0);
        assert_eq!(report.counter("pairs_accepted"), 33);
        assert_eq!(report.ranks[0].counter("batches"), 9);
        assert!((report.ranks[0].modelled_comm_seconds() - 1e-4).abs() < 1e-12);
        assert!((report.max_idle_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(RunReport::from_json_str("{\"format\": \"other\"}").is_err());
        assert!(RunReport::from_json_str("[1,2]").is_err());
    }
}
