//! Time-resolved per-rank event tracing.
//!
//! A [`Tracer`] is a per-rank sink of timestamped events — begin/end
//! spans and instant marks — recorded against a **monotonic clock
//! shared by every rank of a run** (the [`TraceSpec`] epoch), so the
//! exported timelines align. Buffers are **bounded**: a tracer never
//! allocates after construction; once full it counts overflow in
//! `dropped_events` instead of growing. The "off" path of every
//! recording call is one branch and nothing else (see the
//! `disabled_tracer_off_path_is_cheap` test, which measures it).
//!
//! Finished per-rank buffers ([`RankTrace`]) assemble into a [`Trace`]
//! document that exports Chrome trace-event JSON — one track per rank —
//! loadable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//! Derived diagnostics (idle-gap histograms, occupancy windows) are
//! computed from the same events and folded into the run report by
//! [`crate::RunContext::finish`].

use crate::json::Json;
use std::time::Instant;

/// Default per-rank event capacity (events, not bytes).
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// Schema version stamped into exported trace JSON documents.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// What subsystem an event belongs to; becomes the Chrome `cat` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceCategory {
    /// Pipeline stage boundaries (preprocess / cluster / assemble).
    Stage,
    /// Master-side protocol handling (drain, dispatch, park/unpark).
    Master,
    /// Worker-side compute outside alignment (pair generation, parks).
    Worker,
    /// Communication substrate (send/recv/wait/barrier/flush).
    Comm,
    /// Distributed GST construction phases.
    Gst,
    /// Alignment batches.
    Align,
    /// Per-cluster assembly work in the distributed assemble stage.
    Assemble,
    /// Fault injection and recovery (kills, death notices, lease
    /// re-queues, checkpoints).
    Fault,
}

impl TraceCategory {
    /// Stable lowercase label used in exported JSON.
    pub fn label(self) -> &'static str {
        match self {
            TraceCategory::Stage => "stage",
            TraceCategory::Master => "master",
            TraceCategory::Worker => "worker",
            TraceCategory::Comm => "comm",
            TraceCategory::Gst => "gst",
            TraceCategory::Align => "align",
            TraceCategory::Assemble => "assemble",
            TraceCategory::Fault => "fault",
        }
    }
}

/// Event shape: a span boundary or an instant mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Span opens (`ph: "B"`).
    Begin,
    /// Span closes (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

/// One recorded event. `args` carries up to three named numeric
/// annotations (tag, bytes, peer rank, …); an empty key means unused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the run's trace epoch (monotonic per rank).
    pub ts_ns: u64,
    /// Span boundary or instant.
    pub kind: TraceKind,
    /// Subsystem category.
    pub cat: TraceCategory,
    /// Event name (static so the hot path never allocates).
    pub name: &'static str,
    /// Named numeric annotations; key `""` = slot unused.
    pub args: [(&'static str, u64); 3],
}

impl TraceEvent {
    /// Value of the named annotation, if present.
    pub fn arg(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

/// Run-wide tracing settings: the on/off switch, the per-rank buffer
/// capacity, and the shared epoch all rank clocks are measured from.
/// `Copy`, so rank closures can capture it by value.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpec {
    /// Master switch; when off, [`TraceSpec::tracer`] hands out
    /// disabled tracers whose every call is a branch plus nothing.
    pub enabled: bool,
    /// Ring capacity, in events, of each rank's buffer.
    pub capacity: usize,
    epoch: Instant,
}

impl TraceSpec {
    /// Tracing off. Tracers built from this spec record nothing.
    pub fn off() -> TraceSpec {
        TraceSpec { enabled: false, capacity: 0, epoch: Instant::now() }
    }

    /// Tracing on with the default per-rank capacity.
    pub fn on() -> TraceSpec {
        TraceSpec::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Tracing on with an explicit per-rank event capacity.
    pub fn with_capacity(capacity: usize) -> TraceSpec {
        TraceSpec { enabled: true, capacity, epoch: Instant::now() }
    }

    /// The shared monotonic epoch every clock of this run is measured
    /// from (tracers *and* gauge samplers — see [`crate::series`]).
    pub(crate) fn epoch_instant(&self) -> Instant {
        self.epoch
    }

    /// Build the tracer for one rank/track. All tracers from the same
    /// spec share the epoch, so their timelines align in the export.
    pub fn tracer(&self, rank: usize, label: &str) -> Tracer {
        Tracer {
            enabled: self.enabled,
            epoch: self.epoch,
            rank,
            label: label.to_string(),
            cap: if self.enabled { self.capacity } else { 0 },
            events: Vec::with_capacity(if self.enabled { self.capacity } else { 0 }),
            dropped: 0,
        }
    }
}

/// Per-rank event sink: a fixed-capacity buffer plus an overflow
/// counter. All recording methods take `&mut self` — a rank is
/// single-threaded, exactly like its `Comm`.
pub struct Tracer {
    enabled: bool,
    epoch: Instant,
    rank: usize,
    label: String,
    cap: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

const NO_ARGS: [(&str, u64); 3] = [("", 0), ("", 0), ("", 0)];

impl Tracer {
    /// A permanently cheap no-op tracer (the default inside `Comm`).
    pub fn disabled() -> Tracer {
        TraceSpec::off().tracer(0, "")
    }

    /// Is this tracer recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Runtime switch. Turning a zero-capacity tracer on only counts
    /// drops; capacity is fixed at construction.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Open a span.
    #[inline]
    pub fn begin(&mut self, cat: TraceCategory, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::Begin, cat, name, NO_ARGS);
    }

    /// Open a span with one named numeric annotation.
    #[inline]
    pub fn begin_arg(&mut self, cat: TraceCategory, name: &'static str, key: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::Begin, cat, name, [(key, v), ("", 0), ("", 0)]);
    }

    /// Close the matching span.
    #[inline]
    pub fn end(&mut self, cat: TraceCategory, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::End, cat, name, NO_ARGS);
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&mut self, cat: TraceCategory, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::Instant, cat, name, NO_ARGS);
    }

    /// Record a point event with one annotation.
    #[inline]
    pub fn instant_arg(&mut self, cat: TraceCategory, name: &'static str, key: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::Instant, cat, name, [(key, v), ("", 0), ("", 0)]);
    }

    /// Record a point event with two annotations.
    #[inline]
    pub fn instant_args(
        &mut self,
        cat: TraceCategory,
        name: &'static str,
        a: (&'static str, u64),
        b: (&'static str, u64),
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::Instant, cat, name, [a, b, ("", 0)]);
    }

    /// Record a point event with three annotations (e.g. tag, bytes,
    /// and the peer rank of a send/recv — the happens-before edge data
    /// the analyzer pairs on).
    #[inline]
    pub fn instant_args3(
        &mut self,
        cat: TraceCategory,
        name: &'static str,
        a: (&'static str, u64),
        b: (&'static str, u64),
        c: (&'static str, u64),
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceKind::Instant, cat, name, [a, b, c]);
    }

    fn push(
        &mut self,
        kind: TraceKind,
        cat: TraceCategory,
        name: &'static str,
        args: [(&'static str, u64); 3],
    ) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.push(TraceEvent { ts_ns, kind, cat, name, args });
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that overflowed the buffer and were discarded.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Finish recording, yielding the immutable per-rank track.
    pub fn finish(self) -> RankTrace {
        RankTrace { rank: self.rank, label: self.label, events: self.events, dropped_events: self.dropped }
    }
}

/// One rank's finished event track.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankTrace {
    /// Rank id (track id in the export). The pipeline's main thread
    /// uses the first id past the parallel section's ranks.
    pub rank: usize,
    /// Track label (`"master"`, `"worker"`, `"pipeline"`, …).
    pub label: String,
    /// Events in record order (timestamps non-decreasing).
    pub events: Vec<TraceEvent>,
    /// Events discarded on buffer overflow.
    pub dropped_events: u64,
}

impl RankTrace {
    /// Total blocked nanoseconds: the summed durations of `wait` and
    /// `barrier` spans (the intervals the rank's thread sat in the
    /// channel or a barrier — the same intervals `wait_ns`/`barrier_ns`
    /// accounting measures).
    pub fn blocked_ns(&self) -> u64 {
        blocked_intervals(&self.events).iter().map(|&(_, dur)| dur).sum()
    }
}

/// Extract `(start_ns, dur_ns)` blocked intervals — `wait` and
/// `barrier` span pairs in category `comm` — from one track's events.
/// These spans never nest within a rank, so a single open slot per name
/// suffices.
pub fn blocked_intervals(events: &[TraceEvent]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut open_wait: Option<u64> = None;
    let mut open_barrier: Option<u64> = None;
    for e in events {
        if e.cat != TraceCategory::Comm {
            continue;
        }
        let slot = match e.name {
            crate::names::EV_WAIT => &mut open_wait,
            crate::names::EV_BARRIER => &mut open_barrier,
            _ => continue,
        };
        match e.kind {
            TraceKind::Begin => *slot = Some(e.ts_ns),
            TraceKind::End => {
                if let Some(start) = slot.take() {
                    out.push((start, e.ts_ns.saturating_sub(start)));
                }
            }
            TraceKind::Instant => {}
        }
    }
    out
}

/// Histogram of a rank's idle gaps (blocked intervals), with log-scale
/// duration buckets. Folded into [`crate::RankReport`] when a run was
/// traced; `total_blocked_ns` cross-checks the `wait_ns`/`barrier_ns`
/// accounting (they measure the same intervals two ways).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IdleGapHistogram {
    /// Upper bounds of the duration buckets, nanoseconds; gaps at or
    /// above the last bound land in the final overflow bucket.
    pub bounds_ns: Vec<u64>,
    /// Gap counts per bucket (`bounds_ns.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all gap durations.
    pub total_blocked_ns: u64,
    /// Longest single gap.
    pub max_gap_ns: u64,
}

/// Bucket bounds for [`IdleGapHistogram`]: 1 µs … 100 ms, decades.
pub const IDLE_GAP_BOUNDS_NS: [u64; 6] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

impl IdleGapHistogram {
    /// Build the histogram from one track's events.
    pub fn from_events(events: &[TraceEvent]) -> IdleGapHistogram {
        let bounds: Vec<u64> = IDLE_GAP_BOUNDS_NS.to_vec();
        let mut counts = vec![0u64; bounds.len() + 1];
        let mut total = 0u64;
        let mut max = 0u64;
        for (_, dur) in blocked_intervals(events) {
            let bucket = bounds.iter().position(|&b| dur < b).unwrap_or(bounds.len());
            counts[bucket] += 1;
            total += dur;
            max = max.max(dur);
        }
        IdleGapHistogram { bounds_ns: bounds, counts, total_blocked_ns: total, max_gap_ns: max }
    }

    /// Total gaps counted.
    pub fn total_gaps(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total blocked time in seconds.
    pub fn total_blocked_seconds(&self) -> f64 {
        self.total_blocked_ns as f64 * 1e-9
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bounds_ns", Json::Arr(self.bounds_ns.iter().map(|&b| Json::Num(b as f64)).collect())),
            ("counts", Json::Arr(self.counts.iter().map(|&c| Json::Num(c as f64)).collect())),
            ("total_blocked_ns", Json::Num(self.total_blocked_ns as f64)),
            ("max_gap_ns", Json::Num(self.max_gap_ns as f64)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> IdleGapHistogram {
        let nums = |key: &str| -> Vec<u64> {
            v.get(key).and_then(Json::as_arr).unwrap_or_default().iter().filter_map(Json::as_u64).collect()
        };
        IdleGapHistogram {
            bounds_ns: nums("bounds_ns"),
            counts: nums("counts"),
            total_blocked_ns: v.get("total_blocked_ns").and_then(Json::as_u64).unwrap_or(0),
            max_gap_ns: v.get("max_gap_ns").and_then(Json::as_u64).unwrap_or(0),
        }
    }
}

/// Busy-fraction per fixed time window over a track's recorded range:
/// 1 − (blocked time in window / window length). Used for the master's
/// occupancy-over-time diagnostic.
pub fn occupancy_windows(events: &[TraceEvent], windows: usize) -> (f64, Vec<f64>) {
    let (Some(first), Some(last)) = (events.first(), events.last()) else {
        return (0.0, Vec::new());
    };
    let span = last.ts_ns.saturating_sub(first.ts_ns);
    if span == 0 || windows == 0 {
        return (0.0, Vec::new());
    }
    let window_ns = span.div_ceil(windows as u64).max(1);
    let mut blocked = vec![0u64; windows];
    for (start, dur) in blocked_intervals(events) {
        // Distribute the interval over the windows it crosses.
        let mut at = start.max(first.ts_ns);
        let end = (start + dur).min(last.ts_ns);
        while at < end {
            let w = (((at - first.ts_ns) / window_ns) as usize).min(windows - 1);
            let w_end = first.ts_ns + (w as u64 + 1) * window_ns;
            let take = end.min(w_end) - at;
            blocked[w] += take;
            at += take.max(1);
        }
    }
    let occ = blocked.iter().map(|&b| (1.0 - b as f64 / window_ns as f64).clamp(0.0, 1.0)).collect();
    (window_ns as f64 * 1e-9, occ)
}

/// Track-id offset separating gauge counter tracks from event tracks
/// in the Chrome export: rank `r`'s counter samples go out on
/// `tid = COUNTER_TID_OFFSET + r`, so each tid stays internally
/// timestamp-sorted (gauges are merge-sorted; event tracks are already
/// in record order).
pub const COUNTER_TID_OFFSET: usize = 1000;

/// A complete trace document: one track per rank (plus the pipeline's
/// main-thread track), exportable as Chrome trace-event JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Per-rank tracks, in rank order.
    pub tracks: Vec<RankTrace>,
    /// Per-rank gauge time series, exported as `ph: "C"` counter
    /// tracks (empty when the run sampled nothing).
    pub series: Vec<crate::series::RankSeries>,
}

impl Trace {
    /// Assemble a document from finished tracks.
    pub fn new(mut tracks: Vec<RankTrace>) -> Trace {
        tracks.sort_by_key(|t| t.rank);
        Trace { tracks, series: Vec::new() }
    }

    /// As [`Trace::new`], with gauge series attached for counter-track
    /// export.
    pub fn with_series(tracks: Vec<RankTrace>, mut series: Vec<crate::series::RankSeries>) -> Trace {
        let mut doc = Trace::new(tracks);
        series.sort_by_key(|s| s.rank);
        doc.series = series;
        doc
    }

    /// Distinct category labels present across all tracks.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> =
            self.tracks.iter().flat_map(|t| t.events.iter().map(|e| e.cat.label())).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// Total events dropped across tracks.
    pub fn dropped_events(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped_events).sum()
    }

    /// Chrome trace-event JSON (object form). One `tid` per rank under
    /// `pid` 0, with `thread_name` metadata naming each track;
    /// timestamps are microseconds as the format requires. Loads in
    /// Perfetto and `chrome://tracing`.
    pub fn to_chrome_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        for track in &self.tracks {
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(track.rank as f64)),
                ("name", Json::Str("thread_name".into())),
                (
                    "args",
                    Json::obj(vec![
                        ("name", Json::Str(format!("rank {} · {}", track.rank, track.label))),
                        // Per-track overflow count, so `trace_check
                        // --max-dropped` can blame the exact track.
                        ("dropped_events", Json::Num(track.dropped_events as f64)),
                    ]),
                ),
            ]));
            for e in &track.events {
                let mut fields: Vec<(&str, Json)> = vec![
                    (
                        "ph",
                        Json::Str(
                            match e.kind {
                                TraceKind::Begin => "B",
                                TraceKind::End => "E",
                                TraceKind::Instant => "i",
                            }
                            .into(),
                        ),
                    ),
                    ("pid", Json::Num(0.0)),
                    ("tid", Json::Num(track.rank as f64)),
                    ("ts", Json::Num(e.ts_ns as f64 / 1e3)),
                    ("cat", Json::Str(e.cat.label().into())),
                    ("name", Json::Str(e.name.into())),
                ];
                if matches!(e.kind, TraceKind::Instant) {
                    fields.push(("s", Json::Str("t".into())));
                }
                let args: Vec<(String, Json)> = e
                    .args
                    .iter()
                    .filter(|(k, _)| !k.is_empty())
                    .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                    .collect();
                if !args.is_empty() {
                    fields.push(("args", Json::Obj(args)));
                }
                events.push(Json::obj(fields));
            }
        }
        // Gauge series become Perfetto counter tracks (`ph: "C"`). Each
        // rank's samples go on a dedicated offset tid, merge-sorted by
        // timestamp so every tid stays monotonic for validators.
        for rs in &self.series {
            if rs.is_empty() {
                continue;
            }
            let tid = (COUNTER_TID_OFFSET + rs.rank) as f64;
            events.push(Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(tid)),
                ("name", Json::Str("thread_name".into())),
                (
                    "args",
                    Json::obj(vec![
                        ("name", Json::Str(format!("rank {} · {} gauges", rs.rank, rs.label))),
                        ("dropped_events", Json::Num(rs.dropped_samples() as f64)),
                    ]),
                ),
            ]));
            let mut samples: Vec<(u64, &str, u64)> = rs
                .gauges
                .iter()
                .flat_map(|g| g.samples.iter().map(move |&(ts, v)| (ts, g.name.as_str(), v)))
                .collect();
            samples.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
            for (ts_ns, name, value) in samples {
                events.push(Json::obj(vec![
                    ("ph", Json::Str("C".into())),
                    ("pid", Json::Num(0.0)),
                    ("tid", Json::Num(tid)),
                    ("ts", Json::Num(ts_ns as f64 / 1e3)),
                    ("cat", Json::Str("series".into())),
                    ("name", Json::Str(format!("rank{}/{}", rs.rank, name))),
                    ("args", Json::Obj(vec![("value".to_string(), Json::Num(value as f64))])),
                ]));
            }
        }
        Json::obj(vec![
            ("schema_version", Json::Num(TRACE_SCHEMA_VERSION as f64)),
            ("displayTimeUnit", Json::Str("ms".into())),
            ("otherData", Json::obj(vec![("dropped_events", Json::Num(self.dropped_events() as f64))])),
            ("traceEvents", Json::Arr(events)),
        ])
    }

    /// Write the Chrome trace-event document to `path`.
    pub fn write_chrome_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.begin(TraceCategory::Comm, names::EV_WAIT);
        t.instant(TraceCategory::Comm, names::EV_SEND);
        t.end(TraceCategory::Comm, names::EV_WAIT);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn overflow_counts_drops_without_reallocating() {
        let spec = TraceSpec::with_capacity(4);
        let mut t = spec.tracer(0, "test");
        let cap_before = t.events.capacity();
        for _ in 0..10 {
            t.instant(TraceCategory::Comm, names::EV_SEND);
        }
        assert_eq!(t.events().len(), 4, "buffer is bounded");
        assert_eq!(t.dropped_events(), 6, "overflow is counted");
        assert_eq!(t.events.capacity(), cap_before, "no reallocation on overflow");
    }

    #[test]
    fn timestamps_are_monotonic_and_epoch_shared() {
        let spec = TraceSpec::with_capacity(64);
        let mut a = spec.tracer(0, "a");
        let mut b = spec.tracer(1, "b");
        for _ in 0..20 {
            a.instant(TraceCategory::Master, names::EV_DISPATCH);
            b.instant(TraceCategory::Worker, names::EV_GENERATE);
        }
        for t in [&a, &b] {
            assert!(t.events().windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "per-track monotonic");
        }
        let rt = a.finish();
        assert_eq!(rt.rank, 0);
        assert_eq!(rt.label, "a");
    }

    #[test]
    fn runtime_switch_gates_recording() {
        let spec = TraceSpec::with_capacity(8);
        let mut t = spec.tracer(0, "x");
        t.set_enabled(false);
        t.instant(TraceCategory::Comm, names::EV_SEND);
        assert!(t.events().is_empty());
        t.set_enabled(true);
        t.instant(TraceCategory::Comm, names::EV_SEND);
        assert_eq!(t.events().len(), 1);
    }

    /// The tentpole's overhead budget: the disabled path must be a
    /// branch plus nothing — measured here, not assumed. 10 M calls in
    /// well under a second means ≪ 100 ns per call; a smoke clustering
    /// run records ~10⁴–10⁵ would-be events over ≳ 100 ms of wall time,
    /// so a disabled tracer costs far below 1% of such a run.
    #[test]
    fn disabled_tracer_off_path_is_cheap() {
        let mut t = Tracer::disabled();
        let start = Instant::now();
        for i in 0..10_000_000u64 {
            t.instant_args(TraceCategory::Comm, names::EV_SEND, ("tag", i), ("bytes", i));
        }
        let per_call_ns = start.elapsed().as_nanos() as f64 / 1e7;
        assert!(t.events().is_empty());
        assert!(per_call_ns < 100.0, "disabled trace call costs {per_call_ns:.1} ns");
    }

    fn span(t: &mut Tracer, cat: TraceCategory, name: &'static str, busy_ns: u64) {
        // Synthesize deterministic events by direct push (tests only).
        let ts = t.events.last().map(|e| e.ts_ns + 1).unwrap_or(0);
        t.events.push(TraceEvent { ts_ns: ts, kind: TraceKind::Begin, cat, name, args: NO_ARGS });
        t.events.push(TraceEvent { ts_ns: ts + busy_ns, kind: TraceKind::End, cat, name, args: NO_ARGS });
    }

    #[test]
    fn blocked_intervals_pair_wait_and_barrier_spans() {
        let spec = TraceSpec::with_capacity(64);
        let mut t = spec.tracer(0, "x");
        span(&mut t, TraceCategory::Comm, names::EV_WAIT, 500);
        span(&mut t, TraceCategory::Gst, names::EV_GST_BUILD, 9_999); // not blocked
        span(&mut t, TraceCategory::Comm, names::EV_BARRIER, 2_000);
        let gaps = blocked_intervals(t.events());
        assert_eq!(gaps.len(), 2);
        assert_eq!(gaps[0].1, 500);
        assert_eq!(gaps[1].1, 2_000);
        let h = IdleGapHistogram::from_events(t.events());
        assert_eq!(h.total_gaps(), 2);
        assert_eq!(h.total_blocked_ns, 2_500);
        assert_eq!(h.max_gap_ns, 2_000);
        // 500 ns < 1 µs bucket; 2 µs in the second bucket.
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
    }

    #[test]
    fn occupancy_windows_reflect_blocked_share() {
        let spec = TraceSpec::with_capacity(64);
        let mut t = spec.tracer(0, "m");
        // Track covering 0..1000 ns, fully blocked in its second half.
        t.events.push(TraceEvent {
            ts_ns: 0,
            kind: TraceKind::Instant,
            cat: TraceCategory::Master,
            name: names::EV_DISPATCH,
            args: NO_ARGS,
        });
        t.events.push(TraceEvent {
            ts_ns: 500,
            kind: TraceKind::Begin,
            cat: TraceCategory::Comm,
            name: names::EV_WAIT,
            args: NO_ARGS,
        });
        t.events.push(TraceEvent {
            ts_ns: 1000,
            kind: TraceKind::End,
            cat: TraceCategory::Comm,
            name: names::EV_WAIT,
            args: NO_ARGS,
        });
        let (window_s, occ) = occupancy_windows(t.events(), 2);
        assert_eq!(occ.len(), 2);
        assert!(window_s > 0.0);
        assert!(occ[0] > 0.9, "first half busy: {occ:?}");
        assert!(occ[1] < 0.1, "second half blocked: {occ:?}");
    }

    #[test]
    fn chrome_export_is_valid_and_ordered() {
        let spec = TraceSpec::with_capacity(64);
        let mut t = spec.tracer(2, "worker");
        t.begin(TraceCategory::Align, names::EV_ALIGN_BATCH);
        t.instant_args(TraceCategory::Comm, names::EV_SEND, ("tag", 3), ("bytes", 128));
        t.end(TraceCategory::Align, names::EV_ALIGN_BATCH);
        let doc = Trace::new(vec![t.finish()]);
        let json = doc.to_chrome_json();
        // Round-trips through the parser.
        let parsed = Json::parse(&json.pretty()).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Metadata + 3 events.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(events[2].get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(events[2].get("args").unwrap().get("bytes").and_then(Json::as_u64), Some(128));
        assert_eq!(events[3].get("ph").and_then(Json::as_str), Some("E"));
        // Timestamps non-decreasing within the track.
        let ts: Vec<f64> = events[1..].iter().map(|e| e.get("ts").and_then(Json::as_f64).unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(TRACE_SCHEMA_VERSION as u64));
        assert_eq!(doc.categories(), vec!["align", "comm"]);
    }

    /// One blocked span of `dur_ns` as a synthetic event pair.
    fn gap_events(dur_ns: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                ts_ns: 0,
                kind: TraceKind::Begin,
                cat: TraceCategory::Comm,
                name: names::EV_WAIT,
                args: NO_ARGS,
            },
            TraceEvent {
                ts_ns: dur_ns,
                kind: TraceKind::End,
                cat: TraceCategory::Comm,
                name: names::EV_WAIT,
                args: NO_ARGS,
            },
        ]
    }

    #[test]
    fn histogram_empty_event_list_is_all_zero() {
        let h = IdleGapHistogram::from_events(&[]);
        assert_eq!(h.counts, vec![0; IDLE_GAP_BOUNDS_NS.len() + 1]);
        assert_eq!(h.total_gaps(), 0);
        assert_eq!(h.total_blocked_ns, 0);
        assert_eq!(h.max_gap_ns, 0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_half_open() {
        // Buckets are [prev, bound): a gap of exactly `bound` ns falls
        // in the *next* bucket. Probe both decade edges the bounds
        // table names explicitly: 1 µs (first bound) and 100 ms (last).
        let h = IdleGapHistogram::from_events(&gap_events(999));
        assert_eq!(h.counts[0], 1, "999 ns < 1 µs: first bucket");
        let h = IdleGapHistogram::from_events(&gap_events(1_000));
        assert_eq!(h.counts[0], 0, "exactly 1 µs leaves the first bucket");
        assert_eq!(h.counts[1], 1);
        let h = IdleGapHistogram::from_events(&gap_events(99_999_999));
        assert_eq!(h.counts[IDLE_GAP_BOUNDS_NS.len() - 1], 1, "just under 100 ms: last bounded bucket");
        let h = IdleGapHistogram::from_events(&gap_events(100_000_000));
        assert_eq!(h.counts[IDLE_GAP_BOUNDS_NS.len()], 1, "exactly 100 ms overflows");
        let h = IdleGapHistogram::from_events(&gap_events(3_600_000_000));
        assert_eq!(h.counts[IDLE_GAP_BOUNDS_NS.len()], 1, "an hour-long gap still counts once");
        assert_eq!(h.max_gap_ns, 3_600_000_000);
    }

    #[test]
    fn histogram_zero_length_gap_lands_in_first_bucket() {
        let h = IdleGapHistogram::from_events(&gap_events(0));
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.total_blocked_ns, 0);
    }

    #[test]
    fn chrome_export_emits_counter_tracks_for_series() {
        use crate::series::{GaugeSeries, RankSeries};
        let spec = TraceSpec::with_capacity(8);
        let mut t = spec.tracer(1, "worker");
        t.instant(TraceCategory::Comm, names::EV_SEND);
        let series = vec![RankSeries {
            rank: 1,
            label: "worker".into(),
            overhead_ns: 42,
            gauges: vec![GaugeSeries {
                name: names::GAUGE_PENDING_TASKS.into(),
                samples: vec![(100, 7), (300, 9)],
                dropped: 0,
            }],
        }];
        let doc = Trace::with_series(vec![t.finish()], series);
        let parsed = Json::parse(&doc.to_chrome_json().pretty()).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        // Track metadata + 1 instant + gauge metadata + 2 counter samples.
        assert_eq!(events.len(), 5);
        let counters: Vec<&Json> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("C")).collect();
        assert_eq!(counters.len(), 2);
        let c = counters[0];
        assert_eq!(c.get("tid").and_then(Json::as_u64), Some((COUNTER_TID_OFFSET + 1) as u64));
        assert_eq!(c.get("name").and_then(Json::as_str), Some("rank1/pending_tasks"));
        assert_eq!(c.get("args").unwrap().get("value").and_then(Json::as_u64), Some(7));
        // Counter timestamps ascend on their own tid.
        let ts: Vec<f64> = counters.iter().map(|e| e.get("ts").and_then(Json::as_f64).unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn three_arg_instants_round_trip_and_lookup() {
        let spec = TraceSpec::with_capacity(8);
        let mut t = spec.tracer(0, "x");
        t.instant_args3(TraceCategory::Comm, names::EV_SEND, ("tag", 3), ("bytes", 128), ("to", 2));
        let e = t.events()[0];
        assert_eq!(e.arg("tag"), Some(3));
        assert_eq!(e.arg("to"), Some(2));
        assert_eq!(e.arg("missing"), None);
        let doc = Trace::new(vec![t.finish()]);
        let parsed = Json::parse(&doc.to_chrome_json().pretty()).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events[1].get("args").unwrap().get("to").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn histogram_json_round_trip() {
        let h = IdleGapHistogram {
            bounds_ns: IDLE_GAP_BOUNDS_NS.to_vec(),
            counts: vec![1, 2, 3, 0, 0, 0, 1],
            total_blocked_ns: 123_456,
            max_gap_ns: 120_000,
        };
        let back = IdleGapHistogram::from_json(&h.to_json());
        assert_eq!(back, h);
    }
}
