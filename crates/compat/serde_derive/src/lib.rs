//! No-op `serde_derive` stand-in for the offline build environment.
//!
//! The real derive macros generate `Serialize`/`Deserialize` trait
//! impls; nothing in this workspace consumes those impls (there is no
//! serializer crate in the dependency tree — run reports are emitted by
//! `pgasm-telemetry`'s own JSON writer), so expanding to nothing is
//! sufficient and keeps every `#[derive(Serialize, Deserialize)]` in
//! the codebase compiling unchanged.

use proc_macro::TokenStream;

/// Expands to nothing; the annotated type simply gains no impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the annotated type simply gains no impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
