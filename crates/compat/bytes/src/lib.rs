//! Offline stand-in for the `bytes` crate covering the API surface used
//! by `pgasm-mpisim`'s codec and message substrate: [`Bytes`] (cheaply
//! cloneable immutable view, `Arc`-backed), [`BytesMut`] (growable
//! buffer that freezes into `Bytes`), and the [`Buf`]/[`BufMut`]
//! accessor traits for little-endian scalar I/O.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer. A clone shares the same
/// allocation; [`Bytes::split_to`] adjusts view offsets without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// View over static data (copied here; the allocation-free upstream
    /// optimisation is irrelevant at these message sizes).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    /// Bytes remaining in this view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Panics if `at > len` like upstream.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {at} > {}", self.len());
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: need {n}, have {}", self.len());
        let s = &self.data[self.start..self.start + n];
        self.start += n;
        s
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read side: little-endian scalar extraction that advances the cursor.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Extract the next `n` bytes, advancing.
    fn next_bytes(&mut self, n: usize) -> &[u8];

    /// Next `u32`, little-endian.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.next_bytes(4).try_into().unwrap())
    }

    /// Next `u64`, little-endian.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.next_bytes(8).try_into().unwrap())
    }

    /// Next `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.next_bytes(8).try_into().unwrap())
    }

    /// Next `u16`, little-endian.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.next_bytes(2).try_into().unwrap())
    }

    /// Next single byte.
    fn get_u8(&mut self) -> u8 {
        self.next_bytes(1)[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn next_bytes(&mut self, n: usize) -> &[u8] {
        self.take(n)
    }
}

/// Write side: little-endian scalar append.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(1.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(&*r.split_to(3), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn clone_shares_and_split_views() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        let c = b.clone();
        let head = b.split_to(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(&*b, &[3, 4, 5]);
        assert_eq!(&*c, &[1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_end_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.split_to(2);
    }
}
