//! Offline facade for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal stand-in: the `Serialize`/`Deserialize` *names*
//! resolve (trait + derive macro, exactly like the real facade), but the
//! derives expand to nothing and the traits carry no methods. Nothing in
//! the workspace serializes through serde — structured output goes
//! through `pgasm-telemetry`'s hand-rolled JSON layer — so the facade
//! only has to keep the annotations compiling. Swapping the real serde
//! back in (by restoring the registry dependency) requires no source
//! changes.

/// Marker trait; the no-op derive does not implement it, and no code in
/// this workspace bounds on it.
pub trait Serialize {}

/// Marker trait; mirror of [`Serialize`].
pub trait Deserialize<'de>: Sized {}

/// Owned-data variant mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
