//! Offline stand-in for `crossbeam`, providing the `channel` module used
//! by `pgasm-mpisim`'s message substrate. Backed by `std::sync::mpsc`
//! with the receiver behind a mutex so the handle is `Sync` (crossbeam
//! receivers are shareable; mpsc's are not). The semantics the substrate
//! relies on are preserved: unbounded buffering, `recv` blocking until a
//! message or until every sender is dropped (then `Err`), and
//! non-blocking `try_recv` distinguishing Empty from Disconnected.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error from [`Sender::send`]: the receiver was dropped. Carries
    /// the unsent message like crossbeam's.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from [`Receiver::recv`]: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message and every sender has been dropped.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; `Err` if the receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half; shareable across threads (unlike raw mpsc).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_errs_when_all_senders_dropped() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 1);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<u32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
