//! Offline stand-in for the `rand` crate, implementing the slice of the
//! 0.8 API this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] /
//! [`Rng::gen_ratio`], [`seq::SliceRandom::shuffle`] /
//! [`seq::SliceRandom::choose`], and the [`rngs::StdRng`] /
//! [`rngs::SmallRng`] generators.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fast,
//! well-distributed, and fully deterministic. The streams differ from
//! upstream `rand`'s (ChaCha12), so simulated datasets are not
//! bit-identical with runs made against the real crate; every consumer
//! in this workspace treats seeds as arbitrary labels, so only
//! *within-workspace* determinism matters, and that is preserved.

/// Core RNG interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Splitmix64 step — used to expand seeds and as a finalizer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Distinct stream from StdRng for the same seed.
            SmallRng(Xoshiro256::from_u64(seed ^ 0x5AA5_5AA5_5AA5_5AA5))
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Integer types uniform ranges can be drawn over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// `hi` decremented by one unit, for exclusive upper bounds.
    fn one_less(hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // a 64-bit draw against ranges this codebase uses
                // (≤ 2^32) is irrelevant for simulation workloads.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
            #[inline]
            fn one_less(hi: Self) -> Self { hi - 1 }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
    #[inline]
    fn one_less(hi: Self) -> Self {
        hi
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, T::one_less(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`] like upstream `rand`.
pub trait Rng: RngCore {
    /// Sample from a type's standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&y));
            let z: u8 = rng.gen_range(0..4u8);
            assert!(z < 4);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _: u64 = rng.gen_range(0..u64::MAX);
            let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }
}
