//! Offline stand-in for `proptest` covering the slice of the API the
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, [`collection::vec`],
//! [`any`] over `bool` and [`sample::Index`], the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberate for an offline environment:
//! cases are generated from a deterministic per-case seed (no OS
//! entropy), and there is no shrinking — a failing case panics with the
//! raw assertion message. Determinism makes failures reproducible
//! without a persistence file, which replaces the main use of
//! shrinking in CI.

use rand::prelude::*;

/// Deterministic per-case random source handed to strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for case number `case` — stable across runs and platforms.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(0xA076_1D64_78BD_642F ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn gen_usize(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        self.rng.gen_range(lo..=hi_inclusive)
    }
}

/// A recipe for producing values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, func: f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.func)(self.source.generate(rng))
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Mirror of `proptest::sample`.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A length-agnostic index: sampled once, projected onto any
    /// collection size with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `[0, len)`. Panics on `len == 0` like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// Mirror of `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size arguments for [`vec`]: a fixed `usize` or a
    /// `usize` range.
    pub trait IntoSizeRange {
        /// (lo, hi) with hi inclusive.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.lo, self.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` alias module from upstream's prelude.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Expand a block of property tests into plain `#[test]` functions that
/// loop over deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assertion macro; no shrinking, so it is plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion; plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion; plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::for_case(1);
        let s = prop::collection::vec(0u8..4, 3..9);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&c| c < 4));
        }
        let fixed = prop::collection::vec(any::<bool>(), 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
    }

    #[test]
    fn index_projects_within_len() {
        let mut rng = TestRng::for_case(2);
        for _ in 0..1000 {
            let idx = <prop::sample::Index as Arbitrary>::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
            assert!(idx.index(1) == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, tuples, inclusive ranges.
        #[test]
        fn macro_smoke((a, b) in (0u8..4, 0usize..20), w in -3i64..=3, v in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(a < 4);
            prop_assert!(b < 20);
            prop_assert!((-3..=3).contains(&w));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(a as usize + b, b + a as usize);
        }
    }
}
