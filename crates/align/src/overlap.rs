//! Semi-global suffix–prefix ("overlap") alignment.
//!
//! This is the alignment the clustering phase computes for every selected
//! promising pair (§4): leading and trailing gaps are free, so the optimal
//! alignment covers a suffix of one fragment and a prefix of the other
//! (or a containment). Identity over the aligned columns and the overlap
//! length feed the [`crate::scoring::AcceptCriteria`] decision.
//!
//! Four kernels are provided:
//!
//! - [`overlap_align_quality`] — full O(mn) DP with optional
//!   quality-weighted identity (assembly-phase acceptance).
//! - [`banded_overlap_align`] — single-pass banded DP anchored at the
//!   maximal match that generated the pair; allocates its own matrices
//!   and always runs traceback. Kept as the *legacy* reference kernel
//!   for the `ablation_align_kernel` bench and the property tests.
//! - [`overlap_align_two_phase`] — the scalar two-phase kernel. Phase 1
//!   is a score-only banded forward pass over two rolling rows held in a
//!   reusable [`AlignScratch`] (no per-pair allocation, no traceback
//!   matrix), with an early-exit bound that bails as soon as no
//!   remaining in-band path can reach the score any acceptable overlap
//!   must have. Phase 2 re-fills only the band window up to the best end
//!   cell to recover the traceback, and runs only when the phase-1 score
//!   can still satisfy the [`AcceptCriteria`] gate.
//! - [`overlap_align_simd`] — the production hot path: the two-phase
//!   kernel with a lane-chunked phase 1 (see [`crate::simd`]) and
//!   optional per-row adaptive X-drop band shrinking driven by the same
//!   acceptance-floor pricing the early exit uses. See DESIGN.md §5 for
//!   the lane layout and the shrink rule.
//!
//! Gap costs are linear (`gap_extend` per column). At the 1–2% error
//! rates of Sanger-style fragments the accept/reject decision is
//! insensitive to the affine refinement, which is available separately in
//! [`crate::affine`] for consumers that need it.

use crate::scoring::{AcceptCriteria, Scoring};
use crate::simd::{I32x8, LANES};
use serde::{Deserialize, Serialize};

const NEG: i32 = i32::MIN / 4;

/// Rolling-row length that lets the lane-chunked phase-1 passes load a
/// full lane starting at any cell slot (including the staggered
/// `prev[slot + 1]` up-neighbour loads) without bounds branches: the row
/// width plus one is rounded up to a lane multiple, plus one extra lane
/// of NEG padding past the last slot.
#[inline]
fn lane_padded(w: usize) -> usize {
    (w + 1).div_ceil(LANES) * LANES + LANES
}

/// Geometric relationship of the two fragments implied by an overlap
/// alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapKind {
    /// A suffix of `a` aligns to a prefix of `b` (`a` extends left of `b`).
    SuffixPrefix,
    /// A suffix of `b` aligns to a prefix of `a` (`b` extends left of `a`).
    PrefixSuffix,
    /// `a` is contained within `b`.
    AContained,
    /// `b` is contained within `a`.
    BContained,
}

/// Which overlap kernel the clustering engines run per promising pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlignKernel {
    /// Single-pass banded DP with full traceback matrices allocated per
    /// pair (pre-two-phase behaviour; the ablation baseline).
    Legacy,
    /// Score-only rolling pass with early exit, plus a lazy traceback
    /// window for pairs that can still pass the acceptance gate.
    TwoPhase,
    /// The two-phase kernel with a lane-chunked (SIMD) phase 1 and
    /// adaptive X-drop band shrinking — the production default.
    Simd,
}

// Not `#[derive(Default)]`: the in-tree serde derive does not understand
// the `#[default]` variant attribute that would require.
#[allow(clippy::derivable_impls)]
impl Default for AlignKernel {
    fn default() -> Self {
        AlignKernel::Simd
    }
}

/// Result of a suffix–prefix alignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapResult {
    /// Alignment score.
    pub score: i32,
    /// Identical columns / aligned columns (0.0 when nothing aligned).
    pub identity: f64,
    /// Number of aligned columns.
    pub overlap_len: usize,
    /// Half-open range of `a` covered.
    pub a_range: (usize, usize),
    /// Half-open range of `b` covered.
    pub b_range: (usize, usize),
    /// Geometry of the overlap.
    pub kind: OverlapKind,
    /// DP cells evaluated (work accounting for the parallel runtime).
    ///
    /// Accounting contract: `cells == cells_phase1 + cells_phase2`,
    /// where a cell is counted once each time its recurrence is
    /// evaluated; boundary cells (free leading gaps) and traceback
    /// walking are never counted. Single-pass kernels report all work
    /// as phase 1, so historical `dp_cells` totals remain directly
    /// comparable; the two-phase kernel counts its forward pass as
    /// phase 1 and the lazily re-filled traceback window as phase 2.
    pub cells: u64,
    /// Cells evaluated by the (score-only) forward pass.
    pub cells_phase1: u64,
    /// Cells re-evaluated by the traceback-window pass (0 when skipped).
    pub cells_phase2: u64,
    /// Phase 1 bailed before the last row: no in-band continuation could
    /// reach the acceptance score floor.
    pub early_exited: bool,
    /// Phase 2 never ran: the final phase-1 score already misses the
    /// acceptance floor, so identity/ranges are not computed.
    pub traceback_skipped: bool,
    /// In-band phase-1 cells *not* evaluated because adaptive X-drop
    /// banding proved them unable to reach the acceptance floor. These
    /// are savings on top of `cells`; the `cells == phase1 + phase2`
    /// contract counts evaluated cells only.
    pub cells_saved_adaptive: u64,
    /// Rows whose candidate column range the adaptive shrink actually
    /// tightened relative to the fixed band (including rows abandoned
    /// wholesale once every in-band continuation is dead).
    pub band_rows_shrunk: u64,
}

impl OverlapResult {
    fn empty(cells_phase1: u64) -> OverlapResult {
        OverlapResult {
            score: 0,
            identity: 0.0,
            overlap_len: 0,
            a_range: (0, 0),
            b_range: (0, 0),
            kind: OverlapKind::SuffixPrefix,
            cells: cells_phase1,
            cells_phase1,
            cells_phase2: 0,
            early_exited: false,
            traceback_skipped: false,
            cells_saved_adaptive: 0,
            band_rows_shrunk: 0,
        }
    }

    /// A pair rejected by the score gate: ranges/identity are not
    /// computed, so downstream acceptance must (and does) fail.
    fn rejected(
        score: i32,
        cells_phase1: u64,
        early_exited: bool,
        cells_saved_adaptive: u64,
        band_rows_shrunk: u64,
    ) -> OverlapResult {
        OverlapResult {
            score,
            identity: 0.0,
            overlap_len: 0,
            a_range: (0, 0),
            b_range: (0, 0),
            kind: OverlapKind::SuffixPrefix,
            cells: cells_phase1,
            cells_phase1,
            cells_phase2: 0,
            early_exited,
            traceback_skipped: true,
            cells_saved_adaptive,
            band_rows_shrunk,
        }
    }

    fn classify(a_len: usize, b_len: usize, a_range: (usize, usize), b_range: (usize, usize)) -> OverlapKind {
        if a_range.0 == 0 && a_range.1 == a_len {
            OverlapKind::AContained
        } else if b_range.0 == 0 && b_range.1 == b_len {
            OverlapKind::BContained
        } else if b_range.0 == 0 {
            OverlapKind::SuffixPrefix
        } else {
            OverlapKind::PrefixSuffix
        }
    }
}

/// Reusable scratch buffers for the alignment kernels.
///
/// Lifecycle: create one per worker (or engine), pre-size it with
/// [`AlignScratch::for_sequences`], and pass it to every alignment call.
/// Buffers only ever grow, so after the first adequately-sized pair the
/// hot loop performs no heap allocation; [`AlignScratch::grow_events`]
/// and [`AlignScratch::high_water_bytes`] let callers assert exactly
/// that.
#[derive(Debug, Default)]
pub struct AlignScratch {
    /// Rolling rows for the phase-1 score-only pass, lane-padded so the
    /// chunked passes can load full lanes from any cell slot.
    prev: Vec<i32>,
    curr: Vec<i32>,
    /// Per-slot tail-segment weights for the lane-chunked completion
    /// pricing: `wj[sl] = -match_score · sl` (see [`overlap_align_simd`]).
    wj: Vec<i32>,
    wj_match: i32,
    /// Band-window (or full-matrix) score + traceback matrices for the
    /// phase-2 / quality passes.
    dp: Vec<i32>,
    tb: Vec<u8>,
    grows: u64,
}

impl AlignScratch {
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }

    /// Pre-size for banded alignments of sequences up to `max_len` bases
    /// at band half-width `band`, so the hot loop never reallocates.
    /// Row buffers are sized to the *lane-padded* width so the SIMD
    /// kernel's chunked loads fit without growth.
    pub fn for_sequences(max_len: usize, band: usize) -> AlignScratch {
        let mut s = AlignScratch::new();
        let width = (2 * band + 1).min(2 * max_len + 1);
        s.ensure_rows(lane_padded(width + 2));
        // The tail weights depend on the (not yet known) match score;
        // pre-size the buffer so the first fill is a rewrite, not a grow.
        s.wj.resize(lane_padded(width + 2), 0);
        s.ensure_window((max_len + 1) * (width + 2));
        s.grows = 0;
        s
    }

    fn ensure_rows(&mut self, w: usize) {
        if self.prev.len() < w {
            self.grows += 1;
            self.prev.resize(w, NEG);
            self.curr.resize(w, NEG);
        }
    }

    /// Make sure `wj[sl] = -match_score · sl` holds for at least `len`
    /// slots. Refills in place when only the match score changed, so a
    /// pre-sized scratch never grows here.
    fn ensure_wj(&mut self, len: usize, match_score: i32) {
        let grown = self.wj.len() < len;
        if grown {
            self.grows += 1;
            self.wj.resize(len, 0);
        }
        if grown || self.wj_match != match_score {
            self.wj_match = match_score;
            for (sl, v) in self.wj.iter_mut().enumerate() {
                *v = -match_score.wrapping_mul(sl as i32);
            }
        }
    }

    fn ensure_window(&mut self, len: usize) {
        if self.dp.len() < len {
            self.grows += 1;
            self.dp.resize(len, NEG);
            self.tb.resize(len, 3);
        }
    }

    /// High-water scratch footprint in bytes. Buffers never shrink, so
    /// this is monotone; a flat reading across batches means the hot
    /// loop allocated nothing.
    pub fn high_water_bytes(&self) -> u64 {
        (4 * (self.prev.capacity() + self.curr.capacity() + self.wj.capacity() + self.dp.capacity())
            + self.tb.capacity()) as u64
    }

    /// Number of times any buffer grew since construction / pre-sizing.
    pub fn grow_events(&self) -> u64 {
        self.grows
    }
}

/// Band geometry shared by the banded kernels: diagonals
/// `seed_diag ± band`, *clamped* to `[-n, m]` — diagonals outside that
/// range contain no valid DP cell, so clamping shrinks the row width for
/// short pairs without changing the in-band cell set. `w` includes one
/// NEG padding slot on each side so the up/left neighbours of edge cells
/// read NEG instead of branching.
struct Band {
    d_lo: i64,
    d_hi: i64,
    w: usize,
}

impl Band {
    fn new(m: usize, n: usize, seed_diag: i64, band: usize) -> Option<Band> {
        let band = band as i64;
        let d_lo = (seed_diag - band).max(-(n as i64));
        let d_hi = (seed_diag + band).min(m as i64);
        if d_lo > d_hi {
            return None;
        }
        Some(Band { d_lo, d_hi, w: (d_hi - d_lo + 1) as usize + 2 })
    }

    /// Inclusive in-band column range of row `i`, clamped to `[0, n]`.
    /// May be empty (`lo > hi`) when the band has not yet entered — or
    /// has already left — the valid rectangle.
    #[inline]
    fn row_range(&self, i: usize, n: usize) -> (i64, i64) {
        ((i as i64 - self.d_hi).max(0), (i as i64 - self.d_lo).min(n as i64))
    }

    /// Window slot of column `j` in row `i`; slots 0 and `w - 1` are the
    /// NEG padding. Key identity: the slot of `(i-1, j-1)` equals the
    /// slot of `(i, j)`, so `diag = prev[slot]`, `up = prev[slot + 1]`,
    /// `left = curr[slot - 1]`.
    #[inline]
    fn slot(&self, i: usize, j: i64) -> usize {
        (j - (i as i64 - self.d_hi) + 1) as usize
    }
}

/// Minimum score any alignment passing `c` can have under `s`, or `None`
/// when no useful bound exists.
///
/// Derivation: an accepted alignment has `cols ≥ min_overlap` columns of
/// which a fraction `≥ q = min_identity` are matches (masked bases never
/// match, and score mismatched columns as mismatches, so the identity
/// numerator is exactly the set of match-scored columns). With
/// `worst = min(mismatch, gap_extend, 0)` every non-match column scores
/// at least `worst`, hence
/// `score ≥ cols·(q·match + (1−q)·worst) ≥ min_overlap·per_col` whenever
/// `per_col > 0`. Integer scores then give `score ≥ ceil(min_overlap·per_col)`.
/// `q` is nudged down by 1e-9 to stay below the epsilon in
/// [`AcceptCriteria::accepts`]. When `match_score ≤ 0` or `per_col ≤ 0`
/// the bound is vacuous and the gate is disabled.
fn acceptance_floor(c: &AcceptCriteria, s: &Scoring) -> Option<i32> {
    if s.match_score <= 0 {
        return None;
    }
    let worst = s.mismatch.min(s.gap_extend).min(0) as f64;
    let q = (c.min_identity - 1e-9).clamp(0.0, 1.0);
    let per_col = q * s.match_score as f64 + (1.0 - q) * worst;
    if per_col <= 0.0 {
        return None;
    }
    Some((c.min_overlap as f64 * per_col).ceil() as i32)
}

/// Walk a traceback matrix from `end` back to the alignment start.
/// Returns `(a_range, b_range, cols, identity)`; with `quals` the
/// identity is quality-weighted exactly as in [`overlap_align_quality`].
fn walk_traceback(
    a: &[u8],
    b: &[u8],
    quals: Option<(&[u8], &[u8])>,
    tb: &[u8],
    idx: impl Fn(usize, usize) -> usize,
    end: (usize, usize),
) -> ((usize, usize), (usize, usize), usize, f64) {
    let (mut i, mut j) = end;
    let mut cols = 0usize;
    // Quality-weighted tallies; without quality every weight is 1.0 and
    // the ratio reduces to plain matches / columns.
    let (mut w_match, mut w_total) = (0.0f64, 0.0f64);
    let weight = |qi: Option<usize>, qj: Option<usize>| -> f64 {
        match quals {
            None => 1.0,
            Some((qa, qb)) => {
                let wa = qi.map(|x| qa[x] as f64);
                let wb = qj.map(|x| qb[x] as f64);
                match (wa, wb) {
                    (Some(x), Some(y)) => x.min(y).max(1.0),
                    (Some(x), None) | (None, Some(x)) => x.max(1.0),
                    (None, None) => 1.0,
                }
            }
        }
    };
    while i > 0 && j > 0 {
        match tb[idx(i, j)] {
            0 => {
                cols += 1;
                let wgt = weight(Some(i - 1), Some(j - 1));
                w_total += wgt;
                if a[i - 1] == b[j - 1] && pgasm_seq::is_base_code(a[i - 1]) {
                    w_match += wgt;
                }
                i -= 1;
                j -= 1;
            }
            1 => {
                cols += 1;
                w_total += weight(Some(i - 1), None);
                i -= 1;
            }
            2 => {
                cols += 1;
                w_total += weight(None, Some(j - 1));
                j -= 1;
            }
            _ => break,
        }
    }
    ((i, end.0), (j, end.1), cols, if w_total == 0.0 { 0.0 } else { w_match / w_total })
}

/// Full O(mn) suffix–prefix alignment of `a` vs `b`.
pub fn overlap_align(a: &[u8], b: &[u8], s: &Scoring) -> OverlapResult {
    overlap_align_quality(a, b, None, s)
}

/// As [`overlap_align`], with optional *quality-weighted identity*:
/// every aligned column contributes the minimum phred quality of its
/// bases (an indel contributes the quality of the consumed base), so
/// disagreements at low-quality positions — sequencing errors — barely
/// count, while disagreements at high-quality positions — real
/// divergence, e.g. between repeat copies — count fully. This is the
/// quality-aware overlap acceptance that lets CAP3-class assemblers
/// separate noisy true overlaps (weighted identity ≈ 0.99) from clean
/// repeat-induced overlaps (≈ copy divergence).
pub fn overlap_align_quality(
    a: &[u8],
    b: &[u8],
    quals: Option<(&[u8], &[u8])>,
    s: &Scoring,
) -> OverlapResult {
    overlap_align_quality_with(a, b, quals, s, &mut AlignScratch::new())
}

/// As [`overlap_align_quality`], but running on a caller-provided
/// [`AlignScratch`] so batch callers (e.g. the assembly overlap stage)
/// pay for the O(mn) matrices once instead of per pair.
pub fn overlap_align_quality_with(
    a: &[u8],
    b: &[u8],
    quals: Option<(&[u8], &[u8])>,
    s: &Scoring,
    scratch: &mut AlignScratch,
) -> OverlapResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return OverlapResult::empty(0);
    }
    if let Some((qa, qb)) = quals {
        assert_eq!(qa.len(), m, "quality track must match sequence length");
        assert_eq!(qb.len(), n, "quality track must match sequence length");
    }
    let w = n + 1;
    scratch.ensure_window((m + 1) * w);
    let dp = &mut scratch.dp[..(m + 1) * w];
    let tb = &mut scratch.tb[..(m + 1) * w];
    // Only the boundary needs reinitialising: every interior dp/tb cell
    // is overwritten below before it is read, boundary tb is never read
    // (traceback stops at i == 0 or j == 0), and the end scans only read
    // boundary dp on row 0 / column 0, which are zeroed here.
    dp[..w].fill(0);
    for i in 1..=m {
        dp[i * w] = 0;
    }
    for i in 1..=m {
        for j in 1..=n {
            let diag = dp[(i - 1) * w + j - 1] + s.subst(a[i - 1], b[j - 1]);
            let up = dp[(i - 1) * w + j] + s.gap_extend;
            let left = dp[i * w + j - 1] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[i * w + j] = best;
            tb[i * w + j] = dir;
        }
    }
    // Best end cell on the last row or last column (free trailing gaps).
    let mut best_score = NEG;
    let mut end = (0usize, 0usize);
    for j in 0..=n {
        if dp[m * w + j] > best_score {
            best_score = dp[m * w + j];
            end = (m, j);
        }
    }
    for i in 0..=m {
        if dp[i * w + n] > best_score {
            best_score = dp[i * w + n];
            end = (i, n);
        }
    }
    let (a_range, b_range, cols, identity) = walk_traceback(a, b, quals, tb, |i, j| i * w + j, end);
    OverlapResult {
        score: best_score,
        identity,
        overlap_len: cols,
        a_range,
        b_range,
        kind: OverlapResult::classify(m, n, a_range, b_range),
        cells: (m * n) as u64,
        cells_phase1: (m * n) as u64,
        cells_phase2: 0,
        early_exited: false,
        traceback_skipped: false,
        cells_saved_adaptive: 0,
        band_rows_shrunk: 0,
    }
}

/// Banded suffix–prefix alignment restricted to diagonals
/// `seed_diag ± band`, where `seed_diag = a_pos − b_pos` of the maximal
/// match that generated the pair. Runs in O((m + n) · band) time, with
/// the window clamped to the valid diagonal range `[-n, m]` so short
/// pairs with `band ≫ min(m, n)` stop paying the full `2·band + 1` row
/// width.
///
/// With a sufficiently wide band this equals [`overlap_align`]; this
/// single-pass variant allocates per call and always runs traceback —
/// it is the [`AlignKernel::Legacy`] reference that
/// [`overlap_align_two_phase`] is checked against.
pub fn banded_overlap_align(a: &[u8], b: &[u8], seed_diag: i64, band: usize, s: &Scoring) -> OverlapResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return OverlapResult::empty(0);
    }
    let Some(bw) = Band::new(m, n, seed_diag, band) else {
        return OverlapResult::empty(0);
    };
    let w = bw.w;
    let mut dp = vec![NEG; (m + 1) * w];
    let mut tb = vec![3u8; (m + 1) * w];
    let mut cells = 0u64;
    // Row 0: free leading gap in a — dp(0, j) = 0 for in-band j.
    {
        let (lo, hi) = bw.row_range(0, n);
        for j in lo..=hi {
            dp[bw.slot(0, j)] = 0;
        }
    }
    for i in 1..=m {
        let (lo, hi) = bw.row_range(i, n);
        let base = i * w;
        let pbase = (i - 1) * w;
        for j in lo..=hi {
            let sl = bw.slot(i, j);
            if j == 0 {
                // Free leading gap in b.
                dp[base + sl] = 0;
                continue;
            }
            cells += 1;
            let ju = j as usize;
            let diag = dp[pbase + sl] + s.subst(a[i - 1], b[ju - 1]);
            let up = dp[pbase + sl + 1] + s.gap_extend;
            let left = dp[base + sl - 1] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[base + sl] = best;
            tb[base + sl] = dir;
        }
    }
    // Scan for the best end on the last row and on column n.
    let mut best_score = NEG;
    let mut end: Option<(usize, usize)> = None;
    {
        let (lo, hi) = bw.row_range(m, n);
        for j in lo..=hi {
            if dp[m * w + bw.slot(m, j)] > best_score {
                best_score = dp[m * w + bw.slot(m, j)];
                end = Some((m, j as usize));
            }
        }
    }
    for i in 0..=m {
        let (lo, hi) = bw.row_range(i, n);
        if (lo..=hi).contains(&(n as i64)) && dp[i * w + bw.slot(i, n as i64)] > best_score {
            best_score = dp[i * w + bw.slot(i, n as i64)];
            end = Some((i, n));
        }
    }
    let Some(end) = end else {
        return OverlapResult::empty(cells);
    };
    if best_score <= NEG / 2 {
        return OverlapResult::empty(cells);
    }
    let (a_range, b_range, cols, identity) =
        walk_traceback(a, b, None, &tb, |i, j| i * w + bw.slot(i, j as i64), end);
    OverlapResult {
        score: best_score,
        identity,
        overlap_len: cols,
        a_range,
        b_range,
        kind: OverlapResult::classify(m, n, a_range, b_range),
        cells,
        cells_phase1: cells,
        cells_phase2: 0,
        early_exited: false,
        traceback_skipped: false,
        cells_saved_adaptive: 0,
        band_rows_shrunk: 0,
    }
}

/// Two-phase banded suffix–prefix alignment — the production hot path.
///
/// **Phase 1** runs the banded forward recurrence over two rolling rows
/// from `scratch`, tracking only scores: the running best over column
/// `n`, and finally the best over the last row — the same end-cell
/// selection (and tie-breaks) as [`banded_overlap_align`]. When `gate`
/// is given (and `quals` is not — weighted identity is not monotone in
/// score), each row also maintains an upper bound on any completable
/// alignment: the best in-band cell plus a perfect-match extension over
/// the remaining rectangle, a later in-band restart from column 0, or an
/// already-seen column-`n` end. If that bound drops below the
/// [`acceptance_floor`] the kernel bails (`early_exited`) — a pair the
/// full kernel would accept can never be exited this way, because its
/// optimal score is itself bounded by the exit bound.
///
/// **Phase 2** runs only when the phase-1 score can still pass the gate:
/// it re-fills the band window up to the winning end cell (columns
/// clamped to it) into `scratch`'s window matrices and walks the
/// traceback, yielding exactly the legacy kernel's identity, ranges and
/// classification. Gated-out pairs skip it (`traceback_skipped`) and
/// report empty ranges with identity 0, which the gate rejects anyway.
///
/// With `gate: None` the result equals [`banded_overlap_align`] on every
/// field except the phase split of `cells`.
#[allow(clippy::too_many_arguments)]
pub fn overlap_align_two_phase(
    a: &[u8],
    b: &[u8],
    seed_diag: i64,
    band: usize,
    s: &Scoring,
    gate: Option<&AcceptCriteria>,
    quals: Option<(&[u8], &[u8])>,
    scratch: &mut AlignScratch,
) -> OverlapResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return OverlapResult::empty(0);
    }
    if let Some((qa, qb)) = quals {
        assert_eq!(qa.len(), m, "quality track must match sequence length");
        assert_eq!(qb.len(), n, "quality track must match sequence length");
    }
    let Some(bw) = Band::new(m, n, seed_diag, band) else {
        return OverlapResult::empty(0);
    };
    let floor = match (gate, quals) {
        (Some(c), None) => acceptance_floor(c, s),
        _ => None,
    };
    let w = bw.w;
    scratch.ensure_rows(w);
    let mut cells1 = 0u64;
    let mut best_score = NEG;
    let mut end: Option<(usize, usize)> = None;
    {
        let mut prev: &mut [i32] = &mut scratch.prev[..w];
        let mut curr: &mut [i32] = &mut scratch.curr[..w];
        // Running best over column n, with the same first-index-of-max
        // tie-break as the legacy kernel's ascending strict-`>` scan.
        let mut coln_best = NEG;
        let mut coln_i = 0usize;
        let (lo0, hi0) = bw.row_range(0, n);
        prev.fill(NEG);
        for j in lo0..=hi0 {
            prev[bw.slot(0, j)] = 0;
        }
        if (lo0..=hi0).contains(&(n as i64)) {
            coln_best = 0;
            coln_i = 0;
        }
        for i in 1..=m {
            let (lo, hi) = bw.row_range(i, n);
            curr.fill(NEG);
            // Upper bound on any alignment whose path crosses row i.
            let mut row_bound = NEG;
            for j in lo..=hi {
                let sl = bw.slot(i, j);
                if j == 0 {
                    // Free leading gap in b.
                    curr[sl] = 0;
                    if floor.is_some() {
                        row_bound = row_bound.max(s.match_score * (m - i).min(n) as i32);
                    }
                    continue;
                }
                cells1 += 1;
                let ju = j as usize;
                let diag = prev[sl] + s.subst(a[i - 1], b[ju - 1]);
                let up = prev[sl + 1] + s.gap_extend;
                let left = curr[sl - 1] + s.gap_extend;
                let best = if diag >= up && diag >= left {
                    diag
                } else if up >= left {
                    up
                } else {
                    left
                };
                curr[sl] = best;
                if ju == n && best > coln_best {
                    coln_best = best;
                    coln_i = i;
                }
                if floor.is_some() && best > NEG / 2 {
                    row_bound = row_bound.max(best + s.match_score * (m - i).min(n - ju) as i32);
                }
            }
            if let Some(f) = floor {
                if i < m {
                    // Alignments not crossing row i either already ended
                    // on column n above it, or start at a later in-band
                    // (i0, 0) — possible only while i < d_hi.
                    let restart =
                        if (i as i64) < bw.d_hi { s.match_score * (m - i - 1).min(n) as i32 } else { NEG };
                    if row_bound.max(coln_best).max(restart) < f {
                        return OverlapResult::rejected(0, cells1, true, 0, 0);
                    }
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        // `prev` now holds row m: scan it, then fold in the column-n best.
        let (lo, hi) = bw.row_range(m, n);
        for j in lo..=hi {
            let v = prev[bw.slot(m, j)];
            if v > best_score {
                best_score = v;
                end = Some((m, j as usize));
            }
        }
        if coln_best > best_score {
            best_score = coln_best;
            end = Some((coln_i, n));
        }
    }
    let Some((ei, ej)) = end else {
        return OverlapResult::empty(cells1);
    };
    if best_score <= NEG / 2 {
        return OverlapResult::empty(cells1);
    }
    if let Some(f) = floor {
        if best_score < f {
            return OverlapResult::rejected(best_score, cells1, false, 0, 0);
        }
    }
    // Phase 2: re-fill the band window through the end cell. Cells with
    // i ≤ ei, j ≤ ej depend on nothing outside that rectangle, so the
    // clamped window reproduces the legacy matrix (and traceback) there.
    let rows = ei + 1;
    scratch.ensure_window(rows * w);
    let dp = &mut scratch.dp[..rows * w];
    let tb = &mut scratch.tb[..rows * w];
    let mut cells2 = 0u64;
    {
        let (lo, hi) = bw.row_range(0, n);
        dp[..w].fill(NEG);
        tb[..w].fill(3);
        for j in lo..=hi.min(ej as i64) {
            dp[bw.slot(0, j)] = 0;
        }
    }
    for i in 1..=ei {
        let (lo, hi) = bw.row_range(i, n);
        let hi = hi.min(ej as i64);
        let base = i * w;
        let pbase = (i - 1) * w;
        dp[base..base + w].fill(NEG);
        tb[base..base + w].fill(3);
        for j in lo..=hi {
            let sl = bw.slot(i, j);
            if j == 0 {
                dp[base + sl] = 0;
                continue;
            }
            cells2 += 1;
            let ju = j as usize;
            let diag = dp[pbase + sl] + s.subst(a[i - 1], b[ju - 1]);
            let up = dp[pbase + sl + 1] + s.gap_extend;
            let left = dp[base + sl - 1] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[base + sl] = best;
            tb[base + sl] = dir;
        }
    }
    debug_assert_eq!(
        dp[ei * w + bw.slot(ei, ej as i64)],
        best_score,
        "phase-2 window must reproduce the phase-1 end cell"
    );
    let (a_range, b_range, cols, identity) =
        walk_traceback(a, b, quals, tb, |i, j| i * w + bw.slot(i, j as i64), (ei, ej));
    OverlapResult {
        score: best_score,
        identity,
        overlap_len: cols,
        a_range,
        b_range,
        kind: OverlapResult::classify(m, n, a_range, b_range),
        cells: cells1 + cells2,
        cells_phase1: cells1,
        cells_phase2: cells2,
        early_exited: false,
        traceback_skipped: false,
        cells_saved_adaptive: 0,
        band_rows_shrunk: 0,
    }
}

/// Options for [`overlap_align_simd`].
#[derive(Debug, Clone, Copy)]
pub struct SimdOpts {
    /// Run the phase-1 inner pass through the scalar fallback instead of
    /// the lane-chunked pass. Results are bit-identical either way (the
    /// `force-scalar` cargo feature forces this on regardless).
    pub force_scalar: bool,
    /// Per-row adaptive X-drop band shrinking. Takes effect only when an
    /// [`acceptance_floor`] exists and `mismatch ≤ 0`, `gap_extend ≤ 0`
    /// (the monotone-potential argument needs both); inert otherwise.
    pub adaptive: bool,
}

impl Default for SimdOpts {
    fn default() -> SimdOpts {
        SimdOpts { force_scalar: cfg!(feature = "force-scalar"), adaptive: true }
    }
}

/// Lane-chunked two-phase banded suffix–prefix alignment with adaptive
/// X-drop banding — the production hot path.
///
/// Phase 1 follows [`overlap_align_two_phase`] exactly, but evaluates the
/// in-band row in [`LANES`]-wide chunks: a vector pass computes
/// `max(diag + subst, up + gap)` per lane (the two `prev`-row inputs have
/// no intra-row dependency), then a scalar ascending pass folds in the
/// `left + gap` dependency — by induction this equals the single-pass
/// scalar recurrence cell for cell. Band edges are NEG-padded in the
/// lane-padded rolling rows, so chunk loads need no bounds branches. The
/// early-exit bound prices every computed cell's best completion
/// `P(i, j) = value + match · min(m − i, n − j)` exactly, as the lanewise
/// min of the row-constant head formula `match · (m − i)` and the
/// per-slot tail formula `wj[sl] + match · (n − i + d_hi + 1)` (with
/// `wj[sl] = −match · sl` precomputed in the scratch), reduced by a
/// lanewise horizontal max.
///
/// **Adaptive X-drop banding** reuses that pricing to shrink the band per
/// row. `P` is non-increasing along any alignment path when
/// `mismatch ≤ 0` and `gap_extend ≤ 0`, so once a cell's `P` drops below
/// the acceptance floor, *every* path through it finishes below the
/// floor: such cells are dead and their columns can be dropped from the
/// next row's candidate range (kept at lane-chunk granularity). Restarts
/// from column 0 stay alive while `match · min(m − i, n)` can still reach
/// the floor, and a scalar right-extension past the candidate range keeps
/// within-row left-gap chains alive while their `P` holds the floor.
/// Every cell on a path whose end score meets the floor has `P ≥ floor`
/// all along, so accepted pairs are computed bit-identically to the fixed
/// band — only cells that provably cannot matter are skipped, counted in
/// `cells_saved_adaptive` (and `band_rows_shrunk` for rows that were
/// actually tightened). Rejected pairs may report a different (never
/// higher) score than the fixed band; the gate rejects them either way.
///
/// With `gate: None` (no usable floor) adaptive shrinking is inert and
/// the result equals [`banded_overlap_align`] on every field except the
/// phase split of `cells`.
///
/// The default rustc target baseline on x86-64 is SSE2, which has no
/// packed 32-bit max — the autovectorised lane loops end up mostly
/// scalar. To get real vector code without per-build `target-cpu`
/// flags, the body is instantiated twice: once at the build baseline
/// and once under `#[target_feature(enable = "avx2")]`, selected by
/// one runtime CPUID check per call. Both instantiations execute the
/// same integer arithmetic, so results are bit-identical across
/// dispatch decisions.
#[allow(clippy::too_many_arguments)]
pub fn overlap_align_simd(
    a: &[u8],
    b: &[u8],
    seed_diag: i64,
    band: usize,
    s: &Scoring,
    gate: Option<&AcceptCriteria>,
    quals: Option<(&[u8], &[u8])>,
    scratch: &mut AlignScratch,
    opts: SimdOpts,
) -> OverlapResult {
    #[cfg(target_arch = "x86_64")]
    {
        let use_scalar = opts.force_scalar || cfg!(feature = "force-scalar");
        if !use_scalar && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just detected on this CPU.
            return unsafe { simd_body_avx2(a, b, seed_diag, band, s, gate, quals, scratch, opts) };
        }
    }
    simd_body(a, b, seed_diag, band, s, gate, quals, scratch, opts)
}

/// [`simd_body`] compiled with AVX2 codegen enabled (the
/// `#[inline(always)]` body inherits the caller's target features).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn simd_body_avx2(
    a: &[u8],
    b: &[u8],
    seed_diag: i64,
    band: usize,
    s: &Scoring,
    gate: Option<&AcceptCriteria>,
    quals: Option<(&[u8], &[u8])>,
    scratch: &mut AlignScratch,
    opts: SimdOpts,
) -> OverlapResult {
    simd_body(a, b, seed_diag, band, s, gate, quals, scratch, opts)
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn simd_body(
    a: &[u8],
    b: &[u8],
    seed_diag: i64,
    band: usize,
    s: &Scoring,
    gate: Option<&AcceptCriteria>,
    quals: Option<(&[u8], &[u8])>,
    scratch: &mut AlignScratch,
    opts: SimdOpts,
) -> OverlapResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return OverlapResult::empty(0);
    }
    if let Some((qa, qb)) = quals {
        assert_eq!(qa.len(), m, "quality track must match sequence length");
        assert_eq!(qb.len(), n, "quality track must match sequence length");
    }
    let Some(bw) = Band::new(m, n, seed_diag, band) else {
        return OverlapResult::empty(0);
    };
    let floor = match (gate, quals) {
        (Some(c), None) => acceptance_floor(c, s),
        _ => None,
    };
    let adaptive = opts.adaptive && floor.is_some() && s.mismatch <= 0 && s.gap_extend <= 0;
    let use_scalar = opts.force_scalar || cfg!(feature = "force-scalar");
    let w = bw.w;
    let padded = lane_padded(w);
    scratch.ensure_rows(padded);
    scratch.ensure_wj(padded, s.match_score);
    let mut cells1 = 0u64;
    let mut saved = 0u64;
    let mut rows_shrunk = 0u64;
    let mut best_score = NEG;
    let mut end: Option<(usize, usize)> = None;
    {
        let mut prev: &mut [i32] = &mut scratch.prev[..padded];
        let mut curr: &mut [i32] = &mut scratch.curr[..padded];
        let wj: &[i32] = &scratch.wj[..padded];
        let mut coln_best = NEG;
        let mut coln_i = 0usize;
        let (lo0, hi0) = bw.row_range(0, n);
        prev.fill(NEG);
        for j in lo0..=hi0 {
            prev[bw.slot(0, j)] = 0;
        }
        if (lo0..=hi0).contains(&(n as i64)) {
            coln_best = 0;
        }
        // Live column range of the previous row under adaptive shrinking
        // (empty hull: lo > hi). Row 0 holds only zeros, and
        // P(0, j) = match · min(m, n − j) is non-increasing in j, so its
        // live set is a prefix of the in-band range.
        let (mut live_lo, mut live_hi) = (lo0, hi0);
        if adaptive {
            let f = floor.unwrap();
            let mut h = lo0 - 1;
            for j in lo0..=hi0 {
                if s.match_score.saturating_mul(m.min(n - j as usize) as i32) >= f {
                    h = j;
                } else {
                    break;
                }
            }
            live_hi = h;
            if live_hi < live_lo {
                (live_lo, live_hi) = (i64::MAX, i64::MIN);
            }
        }
        let mut dead_break = false;
        for i in 1..=m {
            let (blo, bhi) = bw.row_range(i, n);
            let (mut clo, mut chi) = (blo, bhi);
            // Restart cell (i, 0): free leading gap in b, alive while a
            // fresh alignment from here can still reach the floor.
            let mut restart_alive = false;
            if adaptive {
                let f = floor.unwrap();
                restart_alive =
                    blo == 0 && bhi >= 0 && s.match_score.saturating_mul((m - i).min(n) as i32) >= f;
                clo = clo.max(live_lo);
                chi = chi.min(live_hi.saturating_add(1));
                if restart_alive {
                    clo = 0;
                    chi = chi.max(0);
                }
                if clo > chi {
                    // No live candidates this row. A later in-band
                    // restart (first possible at row max(i, d_lo)) may
                    // still seed a floor-reaching path, e.g. when the
                    // band has not yet entered the valid rectangle.
                    let r0 = (i as i64).max(bw.d_lo);
                    let future_restart = if r0 <= bw.d_hi && r0 <= m as i64 {
                        s.match_score.saturating_mul((m - r0 as usize).min(n) as i32)
                    } else {
                        NEG
                    };
                    let lo1 = blo.max(1);
                    if bhi >= lo1 {
                        saved += (bhi - lo1 + 1) as u64;
                        rows_shrunk += 1;
                    }
                    if future_restart >= f {
                        // Skip the row but keep going: the hull stays
                        // empty until the restart row re-seeds it.
                        curr.fill(NEG);
                        std::mem::swap(&mut prev, &mut curr);
                        continue;
                    }
                    // Restart potential only decays with i and live
                    // ranges only descend from live parents, so every
                    // remaining row is dead too: the only surviving end
                    // candidate is the banked best over column n.
                    if coln_best < f {
                        // The fixed-band run's early exit fires here too
                        // (same dead cells, no floor-reaching restart),
                        // so the remaining rows are not credited as
                        // saved — it would never have computed them.
                        return OverlapResult::rejected(0, cells1, true, saved, rows_shrunk);
                    }
                    // A banked column-n end keeps the fixed-band run
                    // alive through every remaining row; the adaptive
                    // run skips them all.
                    for ii in (i + 1)..=m {
                        let (lo, hi) = bw.row_range(ii, n);
                        let lo1 = lo.max(1);
                        if hi >= lo1 {
                            saved += (hi - lo1 + 1) as u64;
                            rows_shrunk += 1;
                        }
                    }
                    dead_break = true;
                    break;
                }
            }
            curr.fill(NEG);
            let mut row_bound = NEG;
            if floor.is_some() && blo == 0 && bhi >= 0 {
                // Same restart contribution the scalar kernel adds at
                // its j == 0 iteration.
                row_bound = s.match_score * (m - i).min(n) as i32;
            }
            if clo == 0 && bhi >= 0 {
                curr[bw.slot(i, 0)] = 0;
            }
            let jstart = clo.max(1);
            let mut hull_lo_sl = usize::MAX;
            let mut hull_hi_sl = 0usize;
            let mut ncomp = 0u64;
            if jstart <= chi {
                let sl0 = bw.slot(i, jstart);
                let len = (chi - jstart + 1) as usize;
                ncomp = len as u64;
                cells1 += len as u64;
                let ai = a[i - 1];
                let ai_is_base = pgasm_seq::is_base_code(ai);
                let boff = (jstart - 1) as usize;
                let mut k = 0usize;
                if !use_scalar {
                    // Vector pass: diag/up only — no intra-row dependency.
                    let mvec = I32x8::splat(s.match_score);
                    let xvec = I32x8::splat(s.mismatch);
                    let gvec = I32x8::splat(s.gap_extend);
                    let kvec = I32x8::splat(ai as i32);
                    while k + LANES <= len {
                        let p0 = I32x8::load(&prev[sl0 + k..]);
                        let p1 = I32x8::load(&prev[sl0 + k + 1..]);
                        let sub = if ai_is_base {
                            I32x8::load_u8(&b[boff + k..]).eq_select(kvec, mvec, xvec)
                        } else {
                            xvec
                        };
                        p0.add(sub).max(p1.add(gvec)).store(&mut curr[sl0 + k..]);
                        k += LANES;
                    }
                }
                // Scalar tail — and the whole row when forced scalar.
                while k < len {
                    let sub = if ai_is_base && b[boff + k] == ai { s.match_score } else { s.mismatch };
                    let diag = prev[sl0 + k] + sub;
                    let up = prev[sl0 + k + 1] + s.gap_extend;
                    curr[sl0 + k] = if diag >= up { diag } else { up };
                    k += 1;
                }
                // Ascending left-dependency fold: after this,
                // curr[sl] == max(diag, up, left) exactly as in the
                // single-pass recurrence. The sequential fold
                // out[k] = max(c[k], out[k−1] + g) expands to
                // out[k] = max over t ≤ k of c[t] + (k−t)·g, which the
                // vector path computes as a log-step max-plus prefix
                // scan per chunk (shift-by-1/2/4, each adding the
                // matching multiple of g) plus one carried splat from
                // the previous chunk — the same integer sums in a
                // different association, so the result is bit-identical
                // to the scalar fold.
                let g = s.gap_extend;
                let mut leftv = curr[sl0 - 1];
                let mut k = 0usize;
                if !use_scalar {
                    let gv1 = I32x8::splat(g);
                    let gv2 = I32x8::splat(g.wrapping_mul(2));
                    let gv4 = I32x8::splat(g.wrapping_mul(4));
                    let mut ramp = [0i32; LANES];
                    for (l, r) in ramp.iter_mut().enumerate() {
                        *r = g.wrapping_mul(l as i32 + 1);
                    }
                    let ramp = I32x8(ramp);
                    while k + LANES <= len {
                        let mut v = I32x8::load(&curr[sl0 + k..]);
                        v = v.max(v.shift_up::<1>(NEG).add(gv1));
                        v = v.max(v.shift_up::<2>(NEG).add(gv2));
                        v = v.max(v.shift_up::<4>(NEG).add(gv4));
                        v = v.max(I32x8::splat(leftv).add(ramp));
                        v.store(&mut curr[sl0 + k..]);
                        leftv = v.0[LANES - 1];
                        k += LANES;
                    }
                }
                for c in curr[sl0 + k..sl0 + len].iter_mut() {
                    let l = leftv + g;
                    if l > *c {
                        *c = l;
                    }
                    leftv = *c;
                }
                if chi == n as i64 {
                    let v = curr[sl0 + len - 1];
                    if v > coln_best {
                        coln_best = v;
                        coln_i = i;
                    }
                }
                if let Some(f) = floor {
                    // Completion pricing sweep: exact per-lane
                    // P = value + match · min(m − i, n − j), via the
                    // head/tail split (see function docs). Also derives
                    // the live hull for the next row at lane-chunk
                    // granularity. NEG padding lanes price far below any
                    // floor and never contribute.
                    let av = I32x8::splat(s.match_score.saturating_mul((m - i) as i32));
                    let cv =
                        I32x8::splat(s.match_score.wrapping_mul((n as i64 - i as i64 + bw.d_hi + 1) as i32));
                    let mut k = 0usize;
                    while k < len {
                        let sl = sl0 + k;
                        let v = I32x8::load(&curr[sl..]);
                        let p = v.add(av).min(v.add(I32x8::load(&wj[sl..])).add(cv));
                        let pm = p.hmax();
                        if pm > row_bound {
                            row_bound = pm;
                        }
                        if adaptive && pm >= f {
                            if sl < hull_lo_sl {
                                hull_lo_sl = sl;
                            }
                            let end_sl = (sl + LANES - 1).min(sl0 + len - 1);
                            if end_sl > hull_hi_sl {
                                hull_hi_sl = end_sl;
                            }
                        }
                        k += LANES;
                    }
                    if adaptive {
                        // Right-extension: columns past the candidate
                        // range have only dead diag/up parents, so the
                        // left-gap chain is their only live input; keep
                        // extending while it can still price the floor.
                        let mut j = chi + 1;
                        let mut sl = sl0 + len;
                        while j <= bhi {
                            let v = curr[sl - 1] + s.gap_extend;
                            let p = v + s.match_score * (m - i).min((n as i64 - j) as usize) as i32;
                            if p < f {
                                break;
                            }
                            curr[sl] = v;
                            cells1 += 1;
                            ncomp += 1;
                            if p > row_bound {
                                row_bound = p;
                            }
                            if hull_lo_sl == usize::MAX {
                                hull_lo_sl = sl;
                            }
                            if sl > hull_hi_sl {
                                hull_hi_sl = sl;
                            }
                            if j == n as i64 && v > coln_best {
                                coln_best = v;
                                coln_i = i;
                            }
                            j += 1;
                            sl += 1;
                        }
                    }
                }
            }
            if adaptive {
                let lo1 = blo.max(1);
                let interior = if bhi >= lo1 { (bhi - lo1 + 1) as u64 } else { 0 };
                if interior > ncomp {
                    saved += interior - ncomp;
                    rows_shrunk += 1;
                }
                if hull_lo_sl <= hull_hi_sl && hull_lo_sl != usize::MAX {
                    let base = i as i64 - bw.d_hi - 1;
                    live_lo = hull_lo_sl as i64 + base;
                    live_hi = hull_hi_sl as i64 + base;
                } else {
                    (live_lo, live_hi) = (i64::MAX, i64::MIN);
                }
                if restart_alive {
                    live_lo = live_lo.min(0);
                    live_hi = live_hi.max(0);
                }
            }
            if let Some(f) = floor {
                if i < m {
                    let restart =
                        if (i as i64) < bw.d_hi { s.match_score * (m - i - 1).min(n) as i32 } else { NEG };
                    if row_bound.max(coln_best).max(restart) < f {
                        return OverlapResult::rejected(0, cells1, true, saved, rows_shrunk);
                    }
                }
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        if dead_break {
            best_score = coln_best;
            end = Some((coln_i, n));
        } else {
            let (lo, hi) = bw.row_range(m, n);
            for j in lo..=hi {
                let v = prev[bw.slot(m, j)];
                if v > best_score {
                    best_score = v;
                    end = Some((m, j as usize));
                }
            }
            if coln_best > best_score {
                best_score = coln_best;
                end = Some((coln_i, n));
            }
        }
    }
    let Some((ei, ej)) = end else {
        return OverlapResult::empty(cells1);
    };
    if best_score <= NEG / 2 {
        return OverlapResult::empty(cells1);
    }
    if let Some(f) = floor {
        if best_score < f {
            return OverlapResult::rejected(best_score, cells1, false, saved, rows_shrunk);
        }
    }
    // Phase 2: identical to the scalar two-phase kernel — re-fill the
    // *fixed* band window through the end cell (adaptive shrinking never
    // touches it, so accepted pairs reproduce the legacy matrix exactly).
    let rows = ei + 1;
    scratch.ensure_window(rows * w);
    let dp = &mut scratch.dp[..rows * w];
    let tb = &mut scratch.tb[..rows * w];
    let mut cells2 = 0u64;
    {
        let (lo, hi) = bw.row_range(0, n);
        dp[..w].fill(NEG);
        tb[..w].fill(3);
        for j in lo..=hi.min(ej as i64) {
            dp[bw.slot(0, j)] = 0;
        }
    }
    for i in 1..=ei {
        let (lo, hi) = bw.row_range(i, n);
        let hi = hi.min(ej as i64);
        let base = i * w;
        let pbase = (i - 1) * w;
        dp[base..base + w].fill(NEG);
        tb[base..base + w].fill(3);
        for j in lo..=hi {
            let sl = bw.slot(i, j);
            if j == 0 {
                dp[base + sl] = 0;
                continue;
            }
            cells2 += 1;
            let ju = j as usize;
            let diag = dp[pbase + sl] + s.subst(a[i - 1], b[ju - 1]);
            let up = dp[pbase + sl + 1] + s.gap_extend;
            let left = dp[base + sl - 1] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[base + sl] = best;
            tb[base + sl] = dir;
        }
    }
    debug_assert_eq!(
        dp[ei * w + bw.slot(ei, ej as i64)],
        best_score,
        "phase-2 window must reproduce the phase-1 end cell"
    );
    let (a_range, b_range, cols, identity) =
        walk_traceback(a, b, quals, tb, |i, j| i * w + bw.slot(i, j as i64), (ei, ej));
    OverlapResult {
        score: best_score,
        identity,
        overlap_len: cols,
        a_range,
        b_range,
        kind: OverlapResult::classify(m, n, a_range, b_range),
        cells: cells1 + cells2,
        cells_phase1: cells1,
        cells_phase2: cells2,
        early_exited: false,
        traceback_skipped: false,
        cells_saved_adaptive: saved,
        band_rows_shrunk: rows_shrunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn s() -> Scoring {
        Scoring::DEFAULT
    }

    #[test]
    fn perfect_dovetail() {
        // a: XXXXCCCC, b: CCCCYYYY — suffix of a == prefix of b.
        let a = DnaSeq::from("ATGAGGTACCCTTGCA");
        let b = DnaSeq::from("CCTTGCAGGATCGATT");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.kind, OverlapKind::SuffixPrefix);
        assert_eq!(r.overlap_len, 7);
        assert!((r.identity - 1.0).abs() < 1e-12);
        assert_eq!(r.a_range, (9, 16));
        assert_eq!(r.b_range, (0, 7));
    }

    #[test]
    fn reverse_dovetail() {
        let a = DnaSeq::from("CCTTGCAGGATCGATT");
        let b = DnaSeq::from("ATGAGGTACCCTTGCA");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.kind, OverlapKind::PrefixSuffix);
        assert_eq!(r.overlap_len, 7);
    }

    #[test]
    fn containment() {
        let a = DnaSeq::from("GGTACCCT");
        let b = DnaSeq::from("ATGAGGTACCCTTGCA");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.kind, OverlapKind::AContained);
        assert_eq!(r.overlap_len, 8);
        assert!((r.identity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_with_one_error_identity() {
        // 20-base overlap with a single substitution in the middle.
        let left = "ATCGGATCGTAGGCTAAGTC";
        let mut overlap: Vec<u8> = left.bytes().collect();
        overlap[10] = b'C'; // introduce mismatch vs b's copy (original is 'A')
        let a_str = format!("TTTTTTTT{}", String::from_utf8(overlap).unwrap());
        let b_str = format!("{}GGGGGGGG", left);
        let a = DnaSeq::from(a_str.as_str());
        let b = DnaSeq::from(b_str.as_str());
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.overlap_len, 20);
        assert!((r.identity - 0.95).abs() < 1e-9, "identity {}", r.identity);
    }

    #[test]
    fn no_overlap_low_identity() {
        let a = DnaSeq::from("AAAAAAAAAAAAAAA");
        let b = DnaSeq::from("CCCCCCCCCCCCCCC");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert!(r.overlap_len <= 1, "spurious overlap {:?}", r);
    }

    #[test]
    fn masked_bases_do_not_match() {
        let mut a = DnaSeq::from("TTTTACGTACGT");
        let mut b = DnaSeq::from("ACGTACGTGGGG");
        // Perfect 8-base dovetail before masking.
        let clean = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(clean.overlap_len, 8);
        a.mask_range(4, 12);
        b.mask_range(0, 8);
        let masked = overlap_align(a.codes(), b.codes(), &s());
        assert!(masked.identity < 0.5, "masked overlap should not score: {masked:?}");
    }

    #[test]
    fn banded_matches_full_when_band_large() {
        let a = DnaSeq::from("ATGAGGTACCCTTGCAAGT");
        let b = DnaSeq::from("CCTTGCAAGTGGATCGATT");
        let full = overlap_align(a.codes(), b.codes(), &s());
        // Seed: "CCTTGCAAGT" begins at a[9], b[0] → diag 9.
        let banded = banded_overlap_align(a.codes(), b.codes(), 9, 64, &s());
        assert_eq!(banded.score, full.score);
        assert_eq!(banded.overlap_len, full.overlap_len);
        assert_eq!(banded.a_range, full.a_range);
        assert_eq!(banded.b_range, full.b_range);
    }

    #[test]
    fn banded_handles_indels_within_band() {
        // Overlap with one deletion: suffix of a = prefix of b minus one base.
        let a = DnaSeq::from("TTTTTTATCGGATCGAGGCTAAGTC");
        let b = DnaSeq::from("ATCGGATCGTAGGCTAAGTCAAAAA");
        let full = overlap_align(a.codes(), b.codes(), &s());
        let banded = banded_overlap_align(a.codes(), b.codes(), 6, 8, &s());
        assert_eq!(banded.score, full.score, "full {full:?} banded {banded:?}");
    }

    #[test]
    fn banded_cheaper_than_full() {
        let a = DnaSeq::from("ATGAGGTACCCTTGCAAGTATGAGGTACCCTTGCAAGT");
        let b = DnaSeq::from("CCTTGCAAGTGGATCGATTCCTTGCAAGTGGATCGATT");
        let full = overlap_align(a.codes(), b.codes(), &s());
        let banded = banded_overlap_align(a.codes(), b.codes(), 0, 4, &s());
        assert!(banded.cells < full.cells);
    }

    #[test]
    fn band_clamp_keeps_results_on_short_pairs() {
        // band ≫ both lengths: the clamped window must still reproduce
        // the full-matrix result (every valid diagonal is in band).
        let a = DnaSeq::from("ATGAGGTACCCTTGCA");
        let b = DnaSeq::from("CCTTGCAGGATCGATT");
        let full = overlap_align(a.codes(), b.codes(), &s());
        let banded = banded_overlap_align(a.codes(), b.codes(), 3, 10_000, &s());
        assert_eq!(banded.score, full.score);
        assert_eq!(banded.overlap_len, full.overlap_len);
        assert_eq!(banded.a_range, full.a_range);
        assert_eq!(banded.b_range, full.b_range);
        assert_eq!(banded.cells, (a.len() * b.len()) as u64, "clamped band covers exactly the full matrix");
    }

    #[test]
    fn quality_weighting_discounts_low_quality_mismatches() {
        // 20-base dovetail with one mismatch planted at overlap column 10.
        let a = DnaSeq::from("TTTTTTTTATCGGATCGTAGGCTAAGTC");
        let mut b = DnaSeq::from("ATCGGATCGTAGGCTAAGTCGGGGGGGG");
        let orig = b.codes()[10];
        b.codes_mut()[10] = if orig == 1 { 2 } else { 1 };
        let s = Scoring::DEFAULT;
        let plain = overlap_align(a.codes(), b.codes(), &s);
        assert!(plain.identity < 1.0 && plain.identity > 0.9);
        // Low quality at the mismatch in both reads: weighted identity
        // rises close to 1.
        let mut qa = vec![40u8; a.len()];
        let mut qb = vec![40u8; b.len()];
        qa[8 + 10] = 2;
        qb[10] = 2;
        let weighted = overlap_align_quality(a.codes(), b.codes(), Some((&qa, &qb)), &s);
        assert!(weighted.identity > 0.99, "weighted {}", weighted.identity);
        // High quality everywhere: weighted equals plain.
        let qa_hi = vec![40u8; a.len()];
        let qb_hi = vec![40u8; b.len()];
        let hi = overlap_align_quality(a.codes(), b.codes(), Some((&qa_hi, &qb_hi)), &s);
        assert!((hi.identity - plain.identity).abs() < 1e-9);
    }

    #[test]
    fn quality_none_matches_plain() {
        let a = DnaSeq::from("ATGAGGTACCCTTGCA");
        let b = DnaSeq::from("CCTTGCAGGATCGATT");
        let s = Scoring::DEFAULT;
        let plain = overlap_align(a.codes(), b.codes(), &s);
        let q = overlap_align_quality(a.codes(), b.codes(), None, &s);
        assert_eq!(plain, q);
    }

    #[test]
    fn quality_scratch_reuse_matches_fresh() {
        let a = DnaSeq::from("TTTTTTTTATCGGATCGTAGGCTAAGTC");
        let b = DnaSeq::from("ATCGGATCGTAGGCTAAGTCGGGGGGGG");
        let s = Scoring::DEFAULT;
        let mut scratch = AlignScratch::new();
        // Dirty the scratch with an unrelated (larger) alignment first.
        let big = DnaSeq::from("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT");
        let _ = overlap_align_quality_with(big.codes(), big.codes(), None, &s, &mut scratch);
        let fresh = overlap_align_quality(a.codes(), b.codes(), None, &s);
        let reused = overlap_align_quality_with(a.codes(), b.codes(), None, &s, &mut scratch);
        assert_eq!(fresh, reused);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(overlap_align(&[], &[], &s()).overlap_len, 0);
        assert_eq!(banded_overlap_align(&[], DnaSeq::from("ACG").codes(), 0, 4, &s()).overlap_len, 0);
        let mut scratch = AlignScratch::new();
        let r =
            overlap_align_two_phase(&[], DnaSeq::from("ACG").codes(), 0, 4, &s(), None, None, &mut scratch);
        assert_eq!(r.overlap_len, 0);
        assert_eq!(r.cells, 0);
    }

    fn assert_same_alignment(tp: &OverlapResult, legacy: &OverlapResult) {
        assert_eq!(tp.score, legacy.score, "two-phase {tp:?} legacy {legacy:?}");
        assert_eq!(tp.identity, legacy.identity, "two-phase {tp:?} legacy {legacy:?}");
        assert_eq!(tp.overlap_len, legacy.overlap_len);
        assert_eq!(tp.a_range, legacy.a_range);
        assert_eq!(tp.b_range, legacy.b_range);
        assert_eq!(tp.kind, legacy.kind);
    }

    #[test]
    fn two_phase_ungated_matches_banded() {
        let cases: Vec<(DnaSeq, DnaSeq, i64, usize)> = vec![
            (DnaSeq::from("ATGAGGTACCCTTGCAAGT"), DnaSeq::from("CCTTGCAAGTGGATCGATT"), 9, 64),
            (DnaSeq::from("TTTTTTATCGGATCGAGGCTAAGTC"), DnaSeq::from("ATCGGATCGTAGGCTAAGTCAAAAA"), 6, 8),
            (DnaSeq::from("AAAAAAAAAAAAAAA"), DnaSeq::from("CCCCCCCCCCCCCCC"), 0, 6),
            (DnaSeq::from("GGTACCCT"), DnaSeq::from("ATGAGGTACCCTTGCA"), -4, 24),
        ];
        let mut scratch = AlignScratch::new();
        for (a, b, diag, band) in &cases {
            let legacy = banded_overlap_align(a.codes(), b.codes(), *diag, *band, &s());
            let tp =
                overlap_align_two_phase(a.codes(), b.codes(), *diag, *band, &s(), None, None, &mut scratch);
            assert_same_alignment(&tp, &legacy);
            assert_eq!(tp.cells_phase1, legacy.cells, "phase 1 covers the same band");
            assert_eq!(tp.cells, tp.cells_phase1 + tp.cells_phase2);
            assert!(!tp.early_exited && !tp.traceback_skipped);
        }
    }

    #[test]
    fn two_phase_gate_preserves_accepted_pairs() {
        // A clean 60-base dovetail passes AcceptCriteria::CLUSTERING; the
        // gated kernel must return exactly the ungated (= legacy) result.
        let shared = "ATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTC";
        let a = DnaSeq::from(format!("TTGCATTGCA{shared}").as_str());
        let b = DnaSeq::from(format!("{shared}GGATCGGATC").as_str());
        let mut scratch = AlignScratch::new();
        let gate = AcceptCriteria::CLUSTERING;
        let legacy = banded_overlap_align(a.codes(), b.codes(), 10, 24, &s());
        assert!(gate.accepts(legacy.identity, legacy.overlap_len), "test fixture must be acceptable");
        let tp = overlap_align_two_phase(a.codes(), b.codes(), 10, 24, &s(), Some(&gate), None, &mut scratch);
        assert_same_alignment(&tp, &legacy);
        assert!(!tp.early_exited && !tp.traceback_skipped);
    }

    #[test]
    fn two_phase_gate_rejects_junk_cheaply() {
        // Unrelated sequences with a long tail: the early-exit bound
        // must fire and charge fewer cells than the legacy kernel.
        let a = DnaSeq::from("A".repeat(400).as_str());
        let b = DnaSeq::from("C".repeat(400).as_str());
        let gate = AcceptCriteria::CLUSTERING;
        let mut scratch = AlignScratch::new();
        let legacy = banded_overlap_align(a.codes(), b.codes(), 0, 24, &s());
        assert!(!gate.accepts(legacy.identity, legacy.overlap_len));
        let tp = overlap_align_two_phase(a.codes(), b.codes(), 0, 24, &s(), Some(&gate), None, &mut scratch);
        assert!(tp.early_exited, "pure-mismatch pair must early-exit: {tp:?}");
        assert!(tp.traceback_skipped);
        assert_eq!(tp.cells_phase2, 0);
        assert!(tp.cells < legacy.cells, "two-phase {} vs legacy {}", tp.cells, legacy.cells);
        assert!(!gate.accepts(tp.identity, tp.overlap_len), "gated result must remain rejected");
    }

    #[test]
    fn two_phase_scratch_never_grows_after_presize() {
        let max_len = 64usize;
        let band = 8usize;
        let mut scratch = AlignScratch::for_sequences(max_len, band);
        assert_eq!(scratch.grow_events(), 0);
        let hw = scratch.high_water_bytes();
        let a = DnaSeq::from("ATGAGGTACCCTTGCAAGTATGAGGTACCCTTGCAAGTATGAGGTACCCTTGCAAGT");
        let b = DnaSeq::from("CCTTGCAAGTGGATCGATTCCTTGCAAGTGGATCGATTCCTTGCAAGTGGATCGATT");
        for diag in -8..8 {
            let _ = overlap_align_two_phase(a.codes(), b.codes(), diag, band, &s(), None, None, &mut scratch);
            let _ = overlap_align_two_phase(
                a.codes(),
                b.codes(),
                diag,
                band,
                &s(),
                Some(&AcceptCriteria::CLUSTERING),
                None,
                &mut scratch,
            );
        }
        assert_eq!(scratch.grow_events(), 0, "hot loop must not reallocate");
        assert_eq!(scratch.high_water_bytes(), hw, "high-water must stay flat");
    }

    fn simd_opts(force_scalar: bool, adaptive: bool) -> SimdOpts {
        SimdOpts { force_scalar, adaptive }
    }

    #[test]
    fn simd_ungated_matches_banded() {
        let cases: Vec<(DnaSeq, DnaSeq, i64, usize)> = vec![
            (DnaSeq::from("ATGAGGTACCCTTGCAAGT"), DnaSeq::from("CCTTGCAAGTGGATCGATT"), 9, 64),
            (DnaSeq::from("TTTTTTATCGGATCGAGGCTAAGTC"), DnaSeq::from("ATCGGATCGTAGGCTAAGTCAAAAA"), 6, 8),
            (DnaSeq::from("AAAAAAAAAAAAAAA"), DnaSeq::from("CCCCCCCCCCCCCCC"), 0, 6),
            (DnaSeq::from("GGTACCCT"), DnaSeq::from("ATGAGGTACCCTTGCA"), -4, 24),
        ];
        let mut scratch = AlignScratch::new();
        for (a, b, diag, band) in &cases {
            let legacy = banded_overlap_align(a.codes(), b.codes(), *diag, *band, &s());
            for fs in [false, true] {
                let sv = overlap_align_simd(
                    a.codes(),
                    b.codes(),
                    *diag,
                    *band,
                    &s(),
                    None,
                    None,
                    &mut scratch,
                    simd_opts(fs, true),
                );
                assert_same_alignment(&sv, &legacy);
                assert_eq!(sv.cells_phase1, legacy.cells, "ungated phase 1 covers the same band");
                assert_eq!(sv.cells, sv.cells_phase1 + sv.cells_phase2);
                assert_eq!(sv.cells_saved_adaptive, 0, "no floor, no shrinking");
            }
        }
    }

    #[test]
    fn simd_gate_preserves_accepted_pairs() {
        let shared = "ATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTC";
        let a = DnaSeq::from(format!("TTGCATTGCA{shared}").as_str());
        let b = DnaSeq::from(format!("{shared}GGATCGGATC").as_str());
        let mut scratch = AlignScratch::new();
        let gate = AcceptCriteria::CLUSTERING;
        let legacy = banded_overlap_align(a.codes(), b.codes(), 10, 24, &s());
        assert!(gate.accepts(legacy.identity, legacy.overlap_len));
        for fs in [false, true] {
            for ad in [false, true] {
                let sv = overlap_align_simd(
                    a.codes(),
                    b.codes(),
                    10,
                    24,
                    &s(),
                    Some(&gate),
                    None,
                    &mut scratch,
                    simd_opts(fs, ad),
                );
                assert_same_alignment(&sv, &legacy);
                assert!(!sv.early_exited && !sv.traceback_skipped);
            }
        }
    }

    #[test]
    fn simd_gate_rejects_junk_cheaply() {
        let a = DnaSeq::from("A".repeat(400).as_str());
        let b = DnaSeq::from("C".repeat(400).as_str());
        let gate = AcceptCriteria::CLUSTERING;
        let mut scratch = AlignScratch::new();
        let legacy = banded_overlap_align(a.codes(), b.codes(), 0, 24, &s());
        let sv = overlap_align_simd(
            a.codes(),
            b.codes(),
            0,
            24,
            &s(),
            Some(&gate),
            None,
            &mut scratch,
            SimdOpts::default(),
        );
        assert!(sv.early_exited, "pure-mismatch pair must early-exit: {sv:?}");
        assert!(sv.traceback_skipped);
        assert_eq!(sv.cells_phase2, 0);
        assert!(sv.cells < legacy.cells);
        assert!(!gate.accepts(sv.identity, sv.overlap_len));
    }

    #[test]
    fn simd_scalar_fallback_bit_identical() {
        // Deterministically varied sequences over the full code range,
        // compared field-for-field between the lane and scalar paths.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch_v = AlignScratch::new();
        let mut scratch_s = AlignScratch::new();
        let gate = AcceptCriteria::CLUSTERING;
        for case in 0..40 {
            let la = (next() % 120) as usize;
            let lb = (next() % 120) as usize;
            let a: Vec<u8> = (0..la).map(|_| (next() % 6) as u8).collect();
            let b: Vec<u8> = (0..lb).map(|_| (next() % 6) as u8).collect();
            let diag = (next() % 41) as i64 - 20;
            let band = 1 + (next() % 24) as usize;
            let gate_opt = if case % 2 == 0 { Some(&gate) } else { None };
            for ad in [false, true] {
                let vec = overlap_align_simd(
                    &a,
                    &b,
                    diag,
                    band,
                    &s(),
                    gate_opt,
                    None,
                    &mut scratch_v,
                    simd_opts(false, ad),
                );
                let sc = overlap_align_simd(
                    &a,
                    &b,
                    diag,
                    band,
                    &s(),
                    gate_opt,
                    None,
                    &mut scratch_s,
                    simd_opts(true, ad),
                );
                assert_eq!(vec, sc, "lane vs scalar divergence: case {case} diag {diag} band {band}");
            }
        }
    }

    #[test]
    fn simd_adaptive_saves_cells_and_keeps_accepted_result() {
        // A 60-base true overlap between 200-base reads under a harsh
        // verification scoring (steep off-ridge decay): the winning
        // ridge sits near the floor, so off-ridge band columns price
        // below it and the adaptive shrink engages.
        let s = Scoring { match_score: 1, mismatch: -7, gap_open: -8, gap_extend: -5 };
        let shared = "ATCGGATCGTAGGCTAAGTC".repeat(3);
        let flank_a = "TTGCA".repeat(28);
        let flank_b = "GGATC".repeat(28);
        let a = DnaSeq::from(format!("{flank_a}{shared}").as_str());
        let b = DnaSeq::from(format!("{shared}{flank_b}").as_str());
        let gate = AcceptCriteria::CLUSTERING;
        let mut scratch = AlignScratch::new();
        let diag = flank_a.len() as i64;
        let legacy = banded_overlap_align(a.codes(), b.codes(), diag, 24, &s);
        assert!(gate.accepts(legacy.identity, legacy.overlap_len), "fixture must be acceptable");
        let fixed = overlap_align_simd(
            a.codes(),
            b.codes(),
            diag,
            24,
            &s,
            Some(&gate),
            None,
            &mut scratch,
            simd_opts(false, false),
        );
        let adaptive = overlap_align_simd(
            a.codes(),
            b.codes(),
            diag,
            24,
            &s,
            Some(&gate),
            None,
            &mut scratch,
            simd_opts(false, true),
        );
        assert_same_alignment(&adaptive, &legacy);
        assert_same_alignment(&fixed, &legacy);
        assert!(adaptive.cells_saved_adaptive > 0, "shrink must engage: {adaptive:?}");
        assert!(adaptive.band_rows_shrunk > 0);
        assert!(
            adaptive.cells_phase1 + adaptive.cells_saved_adaptive <= fixed.cells_phase1,
            "saved cells must come out of the fixed-band phase-1 budget: adaptive {adaptive:?} fixed {fixed:?}"
        );
    }

    #[test]
    fn simd_scratch_never_grows_after_presize() {
        let max_len = 64usize;
        let band = 8usize;
        let mut scratch = AlignScratch::for_sequences(max_len, band);
        assert_eq!(scratch.grow_events(), 0);
        let hw = scratch.high_water_bytes();
        let a = DnaSeq::from("ATGAGGTACCCTTGCAAGTATGAGGTACCCTTGCAAGTATGAGGTACCCTTGCAAGT");
        let b = DnaSeq::from("CCTTGCAAGTGGATCGATTCCTTGCAAGTGGATCGATTCCTTGCAAGTGGATCGATT");
        for diag in -8..8 {
            let _ = overlap_align_simd(
                a.codes(),
                b.codes(),
                diag,
                band,
                &s(),
                None,
                None,
                &mut scratch,
                SimdOpts::default(),
            );
            let _ = overlap_align_simd(
                a.codes(),
                b.codes(),
                diag,
                band,
                &s(),
                Some(&AcceptCriteria::CLUSTERING),
                None,
                &mut scratch,
                SimdOpts::default(),
            );
        }
        assert_eq!(scratch.grow_events(), 0, "hot loop must not reallocate");
        assert_eq!(scratch.high_water_bytes(), hw, "high-water must stay flat");
    }

    #[test]
    fn acceptance_floor_matches_hand_computation() {
        // CLUSTERING (0.94 / 40) under DEFAULT (+1 / −2 / ext −1):
        // per_col ≈ 0.94·1 + 0.06·(−2) = 0.82 → ceil(40 · 0.82) = 33.
        let f = acceptance_floor(&AcceptCriteria::CLUSTERING, &Scoring::DEFAULT).unwrap();
        assert_eq!(f, 33);
        // Degenerate criteria must disable the gate, not mis-gate.
        let degenerate = AcceptCriteria { min_identity: 0.0, min_overlap: 0 };
        assert!(acceptance_floor(&degenerate, &Scoring::DEFAULT).is_none());
        let no_match = Scoring { match_score: 0, ..Scoring::DEFAULT };
        assert!(acceptance_floor(&AcceptCriteria::CLUSTERING, &no_match).is_none());
    }
}
