//! Semi-global suffix–prefix ("overlap") alignment.
//!
//! This is the alignment the clustering phase computes for every selected
//! promising pair (§4): leading and trailing gaps are free, so the optimal
//! alignment covers a suffix of one fragment and a prefix of the other
//! (or a containment). Identity over the aligned columns and the overlap
//! length feed the [`crate::scoring::AcceptCriteria`] decision.
//!
//! Two variants are provided: a full O(mn) DP, and a *banded* DP anchored
//! at the maximal match that generated the pair — the fast path of the
//! framework, since the generator hands us the seed's diagonal for free.
//!
//! Gap costs are linear (`gap_extend` per column). At the 1–2% error
//! rates of Sanger-style fragments the accept/reject decision is
//! insensitive to the affine refinement, which is available separately in
//! [`crate::affine`] for consumers that need it.

use crate::scoring::Scoring;
use serde::{Deserialize, Serialize};

const NEG: i32 = i32::MIN / 4;

/// Geometric relationship of the two fragments implied by an overlap
/// alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapKind {
    /// A suffix of `a` aligns to a prefix of `b` (`a` extends left of `b`).
    SuffixPrefix,
    /// A suffix of `b` aligns to a prefix of `a` (`b` extends left of `a`).
    PrefixSuffix,
    /// `a` is contained within `b`.
    AContained,
    /// `b` is contained within `a`.
    BContained,
}

/// Result of a suffix–prefix alignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapResult {
    /// Alignment score.
    pub score: i32,
    /// Identical columns / aligned columns (0.0 when nothing aligned).
    pub identity: f64,
    /// Number of aligned columns.
    pub overlap_len: usize,
    /// Half-open range of `a` covered.
    pub a_range: (usize, usize),
    /// Half-open range of `b` covered.
    pub b_range: (usize, usize),
    /// Geometry of the overlap.
    pub kind: OverlapKind,
    /// DP cells evaluated (work accounting for the parallel runtime).
    pub cells: u64,
}

impl OverlapResult {
    fn empty(cells: u64) -> OverlapResult {
        OverlapResult {
            score: 0,
            identity: 0.0,
            overlap_len: 0,
            a_range: (0, 0),
            b_range: (0, 0),
            kind: OverlapKind::SuffixPrefix,
            cells,
        }
    }

    fn classify(a_len: usize, b_len: usize, a_range: (usize, usize), b_range: (usize, usize)) -> OverlapKind {
        if a_range.0 == 0 && a_range.1 == a_len {
            OverlapKind::AContained
        } else if b_range.0 == 0 && b_range.1 == b_len {
            OverlapKind::BContained
        } else if b_range.0 == 0 {
            OverlapKind::SuffixPrefix
        } else {
            OverlapKind::PrefixSuffix
        }
    }
}

/// Full O(mn) suffix–prefix alignment of `a` vs `b`.
pub fn overlap_align(a: &[u8], b: &[u8], s: &Scoring) -> OverlapResult {
    overlap_align_quality(a, b, None, s)
}

/// As [`overlap_align`], with optional *quality-weighted identity*:
/// every aligned column contributes the minimum phred quality of its
/// bases (an indel contributes the quality of the consumed base), so
/// disagreements at low-quality positions — sequencing errors — barely
/// count, while disagreements at high-quality positions — real
/// divergence, e.g. between repeat copies — count fully. This is the
/// quality-aware overlap acceptance that lets CAP3-class assemblers
/// separate noisy true overlaps (weighted identity ≈ 0.99) from clean
/// repeat-induced overlaps (≈ copy divergence).
pub fn overlap_align_quality(
    a: &[u8],
    b: &[u8],
    quals: Option<(&[u8], &[u8])>,
    s: &Scoring,
) -> OverlapResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return OverlapResult::empty(0);
    }
    if let Some((qa, qb)) = quals {
        assert_eq!(qa.len(), m, "quality track must match sequence length");
        assert_eq!(qb.len(), n, "quality track must match sequence length");
    }
    let w = n + 1;
    let mut dp = vec![0i32; (m + 1) * w];
    // 0 = diag, 1 = up, 2 = left, 3 = boundary stop.
    let mut tb = vec![3u8; (m + 1) * w];
    for i in 1..=m {
        for j in 1..=n {
            let diag = dp[(i - 1) * w + j - 1] + s.subst(a[i - 1], b[j - 1]);
            let up = dp[(i - 1) * w + j] + s.gap_extend;
            let left = dp[i * w + j - 1] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[i * w + j] = best;
            tb[i * w + j] = dir;
        }
    }
    // Best end cell on the last row or last column (free trailing gaps).
    let mut best_score = NEG;
    let mut end = (0usize, 0usize);
    for j in 0..=n {
        if dp[m * w + j] > best_score {
            best_score = dp[m * w + j];
            end = (m, j);
        }
    }
    for i in 0..=m {
        if dp[i * w + n] > best_score {
            best_score = dp[i * w + n];
            end = (i, n);
        }
    }
    let (mut i, mut j) = end;
    let mut cols = 0usize;
    // Quality-weighted tallies; without quality every weight is 1.0 and
    // the ratio reduces to plain matches / columns.
    let (mut w_match, mut w_total) = (0.0f64, 0.0f64);
    let weight = |qi: Option<usize>, qj: Option<usize>| -> f64 {
        match quals {
            None => 1.0,
            Some((qa, qb)) => {
                let wa = qi.map(|x| qa[x] as f64);
                let wb = qj.map(|x| qb[x] as f64);
                match (wa, wb) {
                    (Some(x), Some(y)) => x.min(y).max(1.0),
                    (Some(x), None) | (None, Some(x)) => x.max(1.0),
                    (None, None) => 1.0,
                }
            }
        }
    };
    while i > 0 && j > 0 {
        match tb[i * w + j] {
            0 => {
                cols += 1;
                let wgt = weight(Some(i - 1), Some(j - 1));
                w_total += wgt;
                if a[i - 1] == b[j - 1] && pgasm_seq::is_base_code(a[i - 1]) {
                    w_match += wgt;
                }
                i -= 1;
                j -= 1;
            }
            1 => {
                cols += 1;
                w_total += weight(Some(i - 1), None);
                i -= 1;
            }
            2 => {
                cols += 1;
                w_total += weight(None, Some(j - 1));
                j -= 1;
            }
            _ => break,
        }
    }
    let a_range = (i, end.0);
    let b_range = (j, end.1);
    OverlapResult {
        score: best_score,
        identity: if w_total == 0.0 { 0.0 } else { w_match / w_total },
        overlap_len: cols,
        a_range,
        b_range,
        kind: OverlapResult::classify(m, n, a_range, b_range),
        cells: (m * n) as u64,
    }
}

/// Banded suffix–prefix alignment restricted to diagonals
/// `seed_diag ± band`, where `seed_diag = a_pos − b_pos` of the maximal
/// match that generated the pair. Runs in O((m + n) · band) time.
///
/// With a sufficiently wide band this equals [`overlap_align`]; with the
/// default band (≈ 2 + expected indels) it is the production fast path.
pub fn banded_overlap_align(a: &[u8], b: &[u8], seed_diag: i64, band: usize, s: &Scoring) -> OverlapResult {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return OverlapResult::empty(0);
    }
    let band = band as i64;
    let width = (2 * band + 1) as usize;
    let w = width + 2; // padding column on each side of the band window
    let row_lo = |i: i64| -> i64 { i - seed_diag - band };
    let mut dp = vec![NEG; (m + 1) * w];
    let mut tb = vec![3u8; (m + 1) * w];
    let mut cells = 0u64;
    // Row 0: free leading gap in a — dp(0, j) = 0 for in-band j.
    {
        let lo = row_lo(0);
        for off in 0..width as i64 {
            let j = lo + off;
            if (0..=n as i64).contains(&j) {
                dp[(off + 1) as usize] = 0;
            }
        }
    }
    for i in 1..=m {
        let lo = row_lo(i as i64);
        let prev_lo = row_lo(i as i64 - 1);
        for off in 0..width as i64 {
            let j = lo + off;
            if !(0..=n as i64).contains(&j) {
                continue;
            }
            let idx = i * w + (off + 1) as usize;
            if j == 0 {
                // Free leading gap in b.
                dp[idx] = 0;
                tb[idx] = 3;
                continue;
            }
            cells += 1;
            // Offsets of (i-1, j-1), (i-1, j), (i, j-1) in their windows.
            let d_off = (j - 1) - prev_lo; // in row i-1
            let u_off = j - prev_lo;
            let l_off = (off + 1) - 1;
            let diag = get(&dp, (i - 1) * w, d_off, w) + s.subst(a[i - 1], b[j as usize - 1]);
            let up = get(&dp, (i - 1) * w, u_off, w) + s.gap_extend;
            let left = dp[i * w + l_off as usize] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[idx] = best;
            tb[idx] = dir;
        }
    }
    // Scan for the best end on the last row and on column n.
    let mut best_score = NEG;
    let mut end: Option<(usize, i64)> = None;
    {
        let lo = row_lo(m as i64);
        for off in 0..width as i64 {
            let j = lo + off;
            if (0..=n as i64).contains(&j) && dp[m * w + (off + 1) as usize] > best_score {
                best_score = dp[m * w + (off + 1) as usize];
                end = Some((m, j));
            }
        }
    }
    for i in 0..=m {
        let lo = row_lo(i as i64);
        let off = n as i64 - lo;
        if (0..width as i64).contains(&off) && dp[i * w + (off + 1) as usize] > best_score {
            best_score = dp[i * w + (off + 1) as usize];
            end = Some((i, n as i64));
        }
    }
    let Some((ei, ej)) = end else {
        return OverlapResult::empty(cells);
    };
    if best_score <= NEG / 2 {
        return OverlapResult::empty(cells);
    }
    // Traceback.
    let (mut i, mut j) = (ei, ej);
    let (mut matches, mut cols) = (0usize, 0usize);
    loop {
        if i == 0 || j == 0 {
            break;
        }
        let off = j - row_lo(i as i64);
        let dir = tb[i * w + (off + 1) as usize];
        match dir {
            0 => {
                cols += 1;
                if a[i - 1] == b[j as usize - 1] && pgasm_seq::is_base_code(a[i - 1]) {
                    matches += 1;
                }
                i -= 1;
                j -= 1;
            }
            1 => {
                cols += 1;
                i -= 1;
            }
            2 => {
                cols += 1;
                j -= 1;
            }
            _ => break,
        }
    }
    let a_range = (i, ei);
    let b_range = (j as usize, ej as usize);
    OverlapResult {
        score: best_score,
        identity: if cols == 0 { 0.0 } else { matches as f64 / cols as f64 },
        overlap_len: cols,
        a_range,
        b_range,
        kind: OverlapResult::classify(m, n, a_range, b_range),
        cells,
    }
}

#[inline]
fn get(dp: &[i32], row_base: usize, off: i64, w: usize) -> i32 {
    if (0..(w as i64 - 2)).contains(&off) {
        dp[row_base + (off + 1) as usize]
    } else {
        NEG
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn s() -> Scoring {
        Scoring::DEFAULT
    }

    #[test]
    fn perfect_dovetail() {
        // a: XXXXCCCC, b: CCCCYYYY — suffix of a == prefix of b.
        let a = DnaSeq::from("ATGAGGTACCCTTGCA");
        let b = DnaSeq::from("CCTTGCAGGATCGATT");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.kind, OverlapKind::SuffixPrefix);
        assert_eq!(r.overlap_len, 7);
        assert!((r.identity - 1.0).abs() < 1e-12);
        assert_eq!(r.a_range, (9, 16));
        assert_eq!(r.b_range, (0, 7));
    }

    #[test]
    fn reverse_dovetail() {
        let a = DnaSeq::from("CCTTGCAGGATCGATT");
        let b = DnaSeq::from("ATGAGGTACCCTTGCA");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.kind, OverlapKind::PrefixSuffix);
        assert_eq!(r.overlap_len, 7);
    }

    #[test]
    fn containment() {
        let a = DnaSeq::from("GGTACCCT");
        let b = DnaSeq::from("ATGAGGTACCCTTGCA");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.kind, OverlapKind::AContained);
        assert_eq!(r.overlap_len, 8);
        assert!((r.identity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_with_one_error_identity() {
        // 20-base overlap with a single substitution in the middle.
        let left = "ATCGGATCGTAGGCTAAGTC";
        let mut overlap: Vec<u8> = left.bytes().collect();
        overlap[10] = b'C'; // introduce mismatch vs b's copy (original is 'A')
        let a_str = format!("TTTTTTTT{}", String::from_utf8(overlap).unwrap());
        let b_str = format!("{}GGGGGGGG", left);
        let a = DnaSeq::from(a_str.as_str());
        let b = DnaSeq::from(b_str.as_str());
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(r.overlap_len, 20);
        assert!((r.identity - 0.95).abs() < 1e-9, "identity {}", r.identity);
    }

    #[test]
    fn no_overlap_low_identity() {
        let a = DnaSeq::from("AAAAAAAAAAAAAAA");
        let b = DnaSeq::from("CCCCCCCCCCCCCCC");
        let r = overlap_align(a.codes(), b.codes(), &s());
        assert!(r.overlap_len <= 1, "spurious overlap {:?}", r);
    }

    #[test]
    fn masked_bases_do_not_match() {
        let mut a = DnaSeq::from("TTTTACGTACGT");
        let mut b = DnaSeq::from("ACGTACGTGGGG");
        // Perfect 8-base dovetail before masking.
        let clean = overlap_align(a.codes(), b.codes(), &s());
        assert_eq!(clean.overlap_len, 8);
        a.mask_range(4, 12);
        b.mask_range(0, 8);
        let masked = overlap_align(a.codes(), b.codes(), &s());
        assert!(masked.identity < 0.5, "masked overlap should not score: {masked:?}");
    }

    #[test]
    fn banded_matches_full_when_band_large() {
        let a = DnaSeq::from("ATGAGGTACCCTTGCAAGT");
        let b = DnaSeq::from("CCTTGCAAGTGGATCGATT");
        let full = overlap_align(a.codes(), b.codes(), &s());
        // Seed: "CCTTGCAAGT" begins at a[9], b[0] → diag 9.
        let banded = banded_overlap_align(a.codes(), b.codes(), 9, 64, &s());
        assert_eq!(banded.score, full.score);
        assert_eq!(banded.overlap_len, full.overlap_len);
        assert_eq!(banded.a_range, full.a_range);
        assert_eq!(banded.b_range, full.b_range);
    }

    #[test]
    fn banded_handles_indels_within_band() {
        // Overlap with one deletion: suffix of a = prefix of b minus one base.
        let a = DnaSeq::from("TTTTTTATCGGATCGAGGCTAAGTC");
        let b = DnaSeq::from("ATCGGATCGTAGGCTAAGTCAAAAA");
        let full = overlap_align(a.codes(), b.codes(), &s());
        let banded = banded_overlap_align(a.codes(), b.codes(), 6, 8, &s());
        assert_eq!(banded.score, full.score, "full {full:?} banded {banded:?}");
    }

    #[test]
    fn banded_cheaper_than_full() {
        let a = DnaSeq::from("ATGAGGTACCCTTGCAAGTATGAGGTACCCTTGCAAGT");
        let b = DnaSeq::from("CCTTGCAAGTGGATCGATTCCTTGCAAGTGGATCGATT");
        let full = overlap_align(a.codes(), b.codes(), &s());
        let banded = banded_overlap_align(a.codes(), b.codes(), 0, 4, &s());
        assert!(banded.cells < full.cells);
    }

    #[test]
    fn quality_weighting_discounts_low_quality_mismatches() {
        // 20-base dovetail with one mismatch planted at overlap column 10.
        let a = DnaSeq::from("TTTTTTTTATCGGATCGTAGGCTAAGTC");
        let mut b = DnaSeq::from("ATCGGATCGTAGGCTAAGTCGGGGGGGG");
        let orig = b.codes()[10];
        b.codes_mut()[10] = if orig == 1 { 2 } else { 1 };
        let s = Scoring::DEFAULT;
        let plain = overlap_align(a.codes(), b.codes(), &s);
        assert!(plain.identity < 1.0 && plain.identity > 0.9);
        // Low quality at the mismatch in both reads: weighted identity
        // rises close to 1.
        let mut qa = vec![40u8; a.len()];
        let mut qb = vec![40u8; b.len()];
        qa[8 + 10] = 2;
        qb[10] = 2;
        let weighted = overlap_align_quality(a.codes(), b.codes(), Some((&qa, &qb)), &s);
        assert!(weighted.identity > 0.99, "weighted {}", weighted.identity);
        // High quality everywhere: weighted equals plain.
        let qa_hi = vec![40u8; a.len()];
        let qb_hi = vec![40u8; b.len()];
        let hi = overlap_align_quality(a.codes(), b.codes(), Some((&qa_hi, &qb_hi)), &s);
        assert!((hi.identity - plain.identity).abs() < 1e-9);
    }

    #[test]
    fn quality_none_matches_plain() {
        let a = DnaSeq::from("ATGAGGTACCCTTGCA");
        let b = DnaSeq::from("CCTTGCAGGATCGATT");
        let s = Scoring::DEFAULT;
        let plain = overlap_align(a.codes(), b.codes(), &s);
        let q = overlap_align_quality(a.codes(), b.codes(), None, &s);
        assert_eq!(plain, q);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(overlap_align(&[], &[], &s()).overlap_len, 0);
        assert_eq!(banded_overlap_align(&[], DnaSeq::from("ACG").codes(), 0, 4, &s()).overlap_len, 0);
    }
}
