//! Fixed-length w-mer lookup-table filter — the classical baseline.
//!
//! §2 of the paper: "The most frequently used filter is to generate pairs
//! that have one or more exact matches of a specified length, say w. Such
//! pairs are easily identified using a lookup table… A downside to this
//! approach is that a long exact match of length l reveals itself as
//! (l − w + 1) matches of length w." This module implements that filter
//! so the ablation benches can quantify exactly that redundancy against
//! the maximal-match generator in `pgasm-gst`.

use pgasm_seq::{FragmentStore, KmerIter, SeqId};
use std::collections::HashMap;

/// Statistics from running the w-mer filter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WmerFilterStats {
    /// Total (redundant) pair generations — one per shared w-mer
    /// occurrence pair, the quantity that grows as l − w + 1 per long
    /// match.
    pub pair_generations: u64,
    /// Distinct unordered sequence pairs generated at least once.
    pub distinct_pairs: u64,
    /// Number of w-mer buckets whose occurrence list was ≥ 2 long.
    pub shared_words: u64,
}

/// A candidate pair from the filter: two sequences and the seed positions
/// of one shared w-mer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WmerPair {
    /// First sequence (lower id).
    pub a: SeqId,
    /// Second sequence.
    pub b: SeqId,
    /// Seed start in `a`.
    pub a_pos: u32,
    /// Seed start in `b`.
    pub b_pos: u32,
}

/// The lookup table: packed w-mer → list of (sequence, position)
/// occurrences.
pub struct WmerTable {
    w: usize,
    table: HashMap<u64, Vec<(SeqId, u32)>>,
}

impl WmerTable {
    /// Index every w-mer of every sequence in the store.
    pub fn build(store: &FragmentStore, w: usize) -> Self {
        let mut table: HashMap<u64, Vec<(SeqId, u32)>> = HashMap::new();
        for (id, codes) in store.iter() {
            for (pos, packed) in KmerIter::new(codes, w) {
                table.entry(packed).or_default().push((id, pos as u32));
            }
        }
        WmerTable { w, table }
    }

    /// Word length.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Number of distinct indexed words.
    pub fn num_words(&self) -> usize {
        self.table.len()
    }

    /// Enumerate every candidate pair (including the redundant
    /// regenerations the paper criticises), invoking `f` per generation.
    /// Pairs between a sequence and itself are skipped; `skip` lets the
    /// caller exclude e.g. pairs of the two strands of one fragment.
    pub fn for_each_pair(
        &self,
        mut skip: impl FnMut(SeqId, SeqId) -> bool,
        mut f: impl FnMut(WmerPair),
    ) -> WmerFilterStats {
        let mut stats = WmerFilterStats::default();
        let mut seen: HashMap<(u32, u32), ()> = HashMap::new();
        for occs in self.table.values() {
            if occs.len() < 2 {
                continue;
            }
            stats.shared_words += 1;
            for (i, &(sa, pa)) in occs.iter().enumerate() {
                for &(sb, pb) in &occs[i + 1..] {
                    if sa == sb || skip(sa, sb) {
                        continue;
                    }
                    let (a, b, a_pos, b_pos) = if sa.0 <= sb.0 { (sa, sb, pa, pb) } else { (sb, sa, pb, pa) };
                    stats.pair_generations += 1;
                    seen.entry((a.0, b.0)).or_insert(());
                    f(WmerPair { a, b, a_pos, b_pos });
                }
            }
        }
        stats.distinct_pairs = seen.len() as u64;
        stats
    }

    /// Convenience: just count generations without a callback.
    pub fn count_pairs(&self, skip: impl FnMut(SeqId, SeqId) -> bool) -> WmerFilterStats {
        self.for_each_pair(skip, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn store(seqs: &[&str]) -> FragmentStore {
        FragmentStore::from_seqs(seqs.iter().map(|s| DnaSeq::from(*s)))
    }

    #[test]
    fn shared_word_produces_pair() {
        let st = store(&["AAACGTTT", "GGACGTCC"]);
        let t = WmerTable::build(&st, 4);
        let mut pairs = Vec::new();
        let stats = t.for_each_pair(|_, _| false, |p| pairs.push(p));
        assert_eq!(stats.distinct_pairs, 1);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].a, SeqId(0));
        assert_eq!(pairs[0].b, SeqId(1));
        assert_eq!(pairs[0].a_pos, 2);
        assert_eq!(pairs[0].b_pos, 2);
    }

    #[test]
    fn long_match_generates_l_minus_w_plus_1_pairs() {
        // Shared exact region of length 10 with no internal word
        // repeats, w = 4 → 7 generations.
        let st = store(&["ACGTTGCAAT", "ACGTTGCAAT"]);
        let t = WmerTable::build(&st, 4);
        let stats = t.count_pairs(|_, _| false);
        assert_eq!(stats.pair_generations, 10 - 4 + 1);
        assert_eq!(stats.distinct_pairs, 1);
    }

    #[test]
    fn no_shared_words_no_pairs() {
        let st = store(&["AAAAAAA", "CCCCCCC"]);
        let t = WmerTable::build(&st, 4);
        let stats = t.count_pairs(|_, _| false);
        assert_eq!(stats.pair_generations, 0);
        assert_eq!(stats.distinct_pairs, 0);
    }

    #[test]
    fn skip_callback_filters() {
        let st = store(&["ACGTACGT", "ACGTACGT"]);
        let t = WmerTable::build(&st, 4);
        let stats = t.count_pairs(|_, _| true);
        assert_eq!(stats.pair_generations, 0);
    }

    #[test]
    fn self_pairs_excluded() {
        // A repeated word within one sequence must not pair it with itself.
        let st = store(&["ACGTAACGTA"]);
        let t = WmerTable::build(&st, 4);
        let stats = t.count_pairs(|_, _| false);
        assert_eq!(stats.pair_generations, 0);
    }

    #[test]
    fn masked_regions_not_indexed() {
        let mut a = DnaSeq::from("ACGTACGT");
        a.mask_range(0, 8);
        let st = FragmentStore::from_seqs(vec![a, DnaSeq::from("ACGTACGT")]);
        let t = WmerTable::build(&st, 4);
        assert_eq!(t.count_pairs(|_, _| false).pair_generations, 0);
    }
}
