//! Smith–Waterman local alignment.

use crate::scoring::Scoring;

/// Result of a local alignment: score and the matched regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalResult {
    /// Best local score (≥ 0).
    pub score: i32,
    /// Half-open range of `a` covered by the optimal local alignment.
    pub a_range: (usize, usize),
    /// Half-open range of `b` covered by the optimal local alignment.
    pub b_range: (usize, usize),
}

/// Best local alignment of `a` vs `b` (linear gaps). Runs in O(mn) time
/// and O(mn) space for start-point recovery via a parallel origin table.
pub fn local_align(a: &[u8], b: &[u8], s: &Scoring) -> LocalResult {
    let (m, n) = (a.len(), b.len());
    let w = n + 1;
    let mut dp = vec![0i32; (m + 1) * w];
    // Origin of the local path ending at each cell, packed (i << 32 | j).
    let mut origin = vec![0u64; (m + 1) * w];
    for (j, o) in origin.iter_mut().enumerate().take(n + 1) {
        *o = pack(0, j);
    }
    let mut best = LocalResult { score: 0, a_range: (0, 0), b_range: (0, 0) };
    for i in 1..=m {
        origin[i * w] = pack(i, 0);
        for j in 1..=n {
            let diag = dp[(i - 1) * w + j - 1] + s.subst(a[i - 1], b[j - 1]);
            let up = dp[(i - 1) * w + j] + s.gap_extend;
            let left = dp[i * w + j - 1] + s.gap_extend;
            let (val, org) = if diag >= up && diag >= left {
                (diag, origin[(i - 1) * w + j - 1])
            } else if up >= left {
                (up, origin[(i - 1) * w + j])
            } else {
                (left, origin[i * w + j - 1])
            };
            if val <= 0 {
                dp[i * w + j] = 0;
                origin[i * w + j] = pack(i, j);
            } else {
                dp[i * w + j] = val;
                origin[i * w + j] = org;
                if val > best.score {
                    let (oi, oj) = unpack(org);
                    best = LocalResult { score: val, a_range: (oi, i), b_range: (oj, j) };
                }
            }
        }
    }
    best
}

#[inline]
fn pack(i: usize, j: usize) -> u64 {
    ((i as u64) << 32) | j as u64
}

#[inline]
fn unpack(v: u64) -> (usize, usize) {
    ((v >> 32) as usize, (v & 0xffff_ffff) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn s() -> Scoring {
        Scoring { match_score: 2, mismatch: -3, gap_open: -4, gap_extend: -4 }
    }

    #[test]
    fn finds_embedded_match() {
        let a = DnaSeq::from("TTTTACGTACGTTTTT");
        let b = DnaSeq::from("GGACGTACGGG");
        let r = local_align(a.codes(), b.codes(), &s());
        // Common region is the 7-base ACGTACG (b diverges after it).
        assert!(r.score >= 2 * 7, "score {}", r.score);
        let (as_, ae) = r.a_range;
        assert_eq!(&a.codes()[as_..ae], DnaSeq::from("ACGTACG").codes());
    }

    #[test]
    fn disjoint_sequences_score_zero_or_small() {
        let a = DnaSeq::from("AAAA");
        let b = DnaSeq::from("TTTT");
        let r = local_align(a.codes(), b.codes(), &s());
        assert_eq!(r.score, 0);
    }

    #[test]
    fn identical_full_length() {
        let a = DnaSeq::from("ACGTGC");
        let r = local_align(a.codes(), a.codes(), &s());
        assert_eq!(r.score, 12);
        assert_eq!(r.a_range, (0, 6));
        assert_eq!(r.b_range, (0, 6));
    }

    #[test]
    fn empty_input() {
        let a = DnaSeq::from("ACGT");
        let r = local_align(a.codes(), &[], &s());
        assert_eq!(r.score, 0);
    }

    #[test]
    fn score_never_negative() {
        let a = DnaSeq::from("ACGTAGCTAG");
        let b = DnaSeq::from("TGCATGCATG");
        assert!(local_align(a.codes(), b.codes(), &s()).score >= 0);
    }
}
