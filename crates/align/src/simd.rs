//! Minimal portable SIMD layer for the alignment kernels.
//!
//! No target intrinsics and no external crates: each lane struct wraps a
//! fixed-size array and exposes the handful of lanewise operations the
//! phase-1 score pass needs (add, max, compare-select, horizontal max).
//! Every method is a plain `for l in 0..LANES` loop over the array, which
//! LLVM reliably autovectorises at `opt-level=3` into SSE2/AVX2 code —
//! the arrays are fixed-width, the loops have no early exits, and there
//! is no memory aliasing the optimiser has to prove away. The payoff is
//! that the *scalar semantics are the specification*: a build that does
//! not vectorise (debug builds, exotic targets, the `force-scalar`
//! feature) computes bit-identical values, because there is only one
//! definition of the arithmetic.
//!
//! Three widths are provided:
//!
//! - [`I32x8`] — what the overlap kernel uses for DP scores. Scores need
//!   i32 headroom: under the harsh verification scoring the benches use
//!   (mismatch −7, gap −5) a 1.5 kbp read pair can legitimately reach
//!   |score| ≈ 10⁴, and the −∞ band sentinel needs to stay an order of
//!   magnitude below *that* so sentinel-derived paths can never win a
//!   lanewise max. i16 would put real scores and the sentinel within a
//!   few thousand of each other on exactly the workloads that matter.
//! - [`I16x8`] / [`I16x16`] — narrow lanes for consumers whose values
//!   provably fit (e.g. quality tracks, short-read kernels); kept here
//!   with the same operation set so a future i16 specialisation of the
//!   kernel is a type swap, not a rewrite.

/// Lane count of the kernel's working type ([`I32x8`]).
pub const LANES: usize = 8;

/// Effective lane width of the phase-1 inner loop in this build: `LANES`
/// normally, 1 when the `force-scalar` feature pins the kernel to its
/// scalar fallback. Surfaced as the `simd_lanes` capability note in run
/// reports so traces from different builds are comparable.
pub fn effective_lanes() -> u64 {
    if cfg!(feature = "force-scalar") {
        1
    } else {
        LANES as u64
    }
}

macro_rules! lane_type {
    ($name:ident, $elem:ty, $n:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name(pub [$elem; $n]);

        impl $name {
            /// Number of lanes.
            pub const LANES: usize = $n;

            /// All lanes set to `v`.
            #[inline(always)]
            pub fn splat(v: $elem) -> $name {
                $name([v; $n])
            }

            /// Load the first `LANES` elements of `src`.
            #[inline(always)]
            pub fn load(src: &[$elem]) -> $name {
                let mut out = [0; $n];
                out.copy_from_slice(&src[..$n]);
                $name(out)
            }

            /// Store all lanes into the first `LANES` elements of `dst`.
            #[inline(always)]
            pub fn store(self, dst: &mut [$elem]) {
                dst[..$n].copy_from_slice(&self.0);
            }

            /// Lanewise `self + o`. Plain (wrapping-in-release) addition:
            /// kernel values are bounded far away from the type limits by
            /// the band sentinel convention, see the module docs.
            ///
            /// An inherent method (not `std::ops::Add`) on purpose: every
            /// lane op is a plain `fn` so the whole kernel body can be
            /// re-instantiated under `#[target_feature]` without trait
            /// dispatch in the way.
            #[allow(clippy::should_implement_trait)]
            #[inline(always)]
            pub fn add(self, o: $name) -> $name {
                let mut out = self.0;
                for l in 0..$n {
                    out[l] = out[l].wrapping_add(o.0[l]);
                }
                $name(out)
            }

            /// Lanewise maximum.
            #[inline(always)]
            pub fn max(self, o: $name) -> $name {
                let mut out = self.0;
                for l in 0..$n {
                    if o.0[l] > out[l] {
                        out[l] = o.0[l];
                    }
                }
                $name(out)
            }

            /// Lanewise minimum.
            #[inline(always)]
            pub fn min(self, o: $name) -> $name {
                let mut out = self.0;
                for l in 0..$n {
                    if o.0[l] < out[l] {
                        out[l] = o.0[l];
                    }
                }
                $name(out)
            }

            /// Lanewise select: where `self == key` take `t`, else `f`.
            /// This is the substitution-score lookup: `self` holds the
            /// subject codes widened to lanes, `key` the broadcast query
            /// code, `t`/`f` the match/mismatch scores.
            #[inline(always)]
            pub fn eq_select(self, key: $name, t: $name, f: $name) -> $name {
                let mut out = [0; $n];
                for l in 0..$n {
                    out[l] = if self.0[l] == key.0[l] { t.0[l] } else { f.0[l] };
                }
                $name(out)
            }

            /// Lanes shifted toward higher indices by `S`; the vacated
            /// low lanes take `fill` (`out[l] = self[l − S]` for
            /// `l ≥ S`). Compiles to a single shuffle; used by the
            /// log-step max-plus prefix scan that resolves the DP row's
            /// left-gap dependency without a serial per-cell chain.
            #[inline(always)]
            pub fn shift_up<const S: usize>(self, fill: $elem) -> $name {
                let mut out = [fill; $n];
                for l in S..$n {
                    out[l] = self.0[l - S];
                }
                $name(out)
            }

            /// Horizontal maximum over all lanes.
            #[inline(always)]
            pub fn hmax(self) -> $elem {
                let mut best = self.0[0];
                for l in 1..$n {
                    if self.0[l] > best {
                        best = self.0[l];
                    }
                }
                best
            }
        }
    };
}

lane_type!(I32x8, i32, 8, "Eight `i32` lanes — the kernel's DP-score working type.");
lane_type!(I16x8, i16, 8, "Eight `i16` lanes.");
lane_type!(I16x16, i16, 16, "Sixteen `i16` lanes.");

impl I32x8 {
    /// Load eight `u8` codes widened to i32 lanes (the subject-sequence
    /// slice of the current chunk).
    #[inline(always)]
    pub fn load_u8(src: &[u8]) -> I32x8 {
        let mut out = [0i32; 8];
        for l in 0..8 {
            out[l] = src[l] as i32;
        }
        I32x8(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_roundtrip() {
        let v = I32x8::splat(7);
        assert_eq!(v.0, [7; 8]);
        let src = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        let v = I32x8::load(&src);
        let mut dst = [0i32; 10];
        v.store(&mut dst);
        assert_eq!(&dst[..8], &src[..8]);
        assert_eq!(dst[8], 0, "store writes exactly LANES elements");
    }

    #[test]
    fn add_max_hmax() {
        let a = I32x8([1, -2, 3, -4, 5, -6, 7, -8]);
        let b = I32x8::splat(10);
        assert_eq!(a.add(b).0, [11, 8, 13, 6, 15, 4, 17, 2]);
        assert_eq!(a.max(I32x8::splat(0)).0, [1, 0, 3, 0, 5, 0, 7, 0]);
        assert_eq!(a.min(I32x8::splat(0)).0, [0, -2, 0, -4, 0, -6, 0, -8]);
        assert_eq!(a.hmax(), 7);
        assert_eq!(I32x8::splat(-9).hmax(), -9);
    }

    #[test]
    fn eq_select_is_the_subst_lookup() {
        let codes = I32x8([0, 1, 2, 3, 0, 1, 2, 3]);
        let s = codes.eq_select(I32x8::splat(2), I32x8::splat(1), I32x8::splat(-2));
        assert_eq!(s.0, [-2, -2, 1, -2, -2, -2, 1, -2]);
    }

    #[test]
    fn load_u8_widens() {
        let src = [0u8, 3, 255, 4, 1, 2, 0, 9];
        assert_eq!(I32x8::load_u8(&src).0, [0, 3, 255, 4, 1, 2, 0, 9]);
    }

    #[test]
    fn i16_lanes_share_the_operation_set() {
        let a = I16x16([3; 16]);
        let b = I16x16::splat(-1);
        assert_eq!(a.add(b).0, [2; 16]);
        assert_eq!(a.max(b).hmax(), 3);
        let c = I16x8([0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(c.eq_select(I16x8::splat(5), I16x8::splat(9), I16x8::splat(0)).0[5], 9);
    }

    #[test]
    fn effective_lanes_matches_build() {
        let l = effective_lanes();
        assert!(l == 1 || l == LANES as u64);
    }
}
