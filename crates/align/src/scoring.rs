//! Scoring schemes and acceptance criteria.

use pgasm_seq::alphabet::is_base_code;
use serde::{Deserialize, Serialize};

/// Substitution / gap scores shared by all kernels. Scores are additive;
/// matches positive, mismatches and gaps negative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scoring {
    /// Score for an identical base pair.
    pub match_score: i32,
    /// Score for a substitution (also applied when either base is masked).
    pub mismatch: i32,
    /// Cost of opening a gap (affine kernels) — included for the first
    /// gapped column.
    pub gap_open: i32,
    /// Cost of extending a gap by one column (all kernels; linear-gap
    /// kernels use only this).
    pub gap_extend: i32,
}

impl Scoring {
    /// The defaults used by the clustering pipeline: +1 match, −2
    /// mismatch, −3/−1 affine gaps — mirrors common assembler settings
    /// (e.g. CAP3's relative weighting).
    pub const DEFAULT: Scoring = Scoring { match_score: 1, mismatch: -2, gap_open: -3, gap_extend: -1 };

    /// Substitution score for two codes; masked bases never match.
    #[inline]
    pub fn subst(&self, a: u8, b: u8) -> i32 {
        if a == b && is_base_code(a) {
            self.match_score
        } else {
            self.mismatch
        }
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring::DEFAULT
    }
}

/// When is a computed suffix–prefix alignment *accepted* as a true
/// overlap? The paper runs clustering with a *less stringent* criterion
/// than final assembly (§3 "Correctness") so that fragments of one contig
/// are never split across clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptCriteria {
    /// Minimum fraction of identical columns among aligned columns.
    pub min_identity: f64,
    /// Minimum number of aligned columns (overlap length).
    pub min_overlap: usize,
}

impl AcceptCriteria {
    /// Clustering-phase criterion (lenient): 94% identity over ≥ 40 bp.
    pub const CLUSTERING: AcceptCriteria = AcceptCriteria { min_identity: 0.94, min_overlap: 40 };

    /// Assembly-phase criterion (stringent, CAP3-like): 95% over ≥ 40 bp.
    /// Two reads carrying independent ~1.5% sequencing error rates share
    /// ≈ 97% identity in a true overlap, so 95% accepts genuine overlaps
    /// while staying stricter than the clustering criterion.
    pub const ASSEMBLY: AcceptCriteria = AcceptCriteria { min_identity: 0.95, min_overlap: 40 };

    /// Does an alignment with the given identity and overlap length pass?
    #[inline]
    pub fn accepts(&self, identity: f64, overlap_len: usize) -> bool {
        identity + 1e-12 >= self.min_identity && overlap_len >= self.min_overlap
    }
}

impl Default for AcceptCriteria {
    fn default() -> Self {
        AcceptCriteria::CLUSTERING
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::MASK;

    #[test]
    fn subst_scores() {
        let s = Scoring::DEFAULT;
        assert_eq!(s.subst(0, 0), 1);
        assert_eq!(s.subst(0, 1), -2);
        assert_eq!(s.subst(MASK, MASK), -2, "masked bases never match");
    }

    #[test]
    fn accept_boundaries() {
        let c = AcceptCriteria { min_identity: 0.9, min_overlap: 10 };
        assert!(c.accepts(0.9, 10));
        assert!(c.accepts(1.0, 100));
        assert!(!c.accepts(0.89, 100));
        assert!(!c.accepts(1.0, 9));
    }

    #[test]
    fn clustering_less_stringent_than_assembly() {
        const { assert!(AcceptCriteria::CLUSTERING.min_identity < AcceptCriteria::ASSEMBLY.min_identity) }
    }
}
