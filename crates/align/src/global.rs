//! Needleman–Wunsch global alignment with linear gap costs.

use crate::scoring::Scoring;

/// Result of a global alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalResult {
    /// Optimal alignment score.
    pub score: i32,
    /// Aligned column operations, in order.
    pub ops: Vec<AlignOp>,
}

/// One alignment column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Both sequences advance, identical bases.
    Match,
    /// Both sequences advance, different bases.
    Mismatch,
    /// Gap in `b` (consumes a base of `a`).
    Delete,
    /// Gap in `a` (consumes a base of `b`).
    Insert,
}

/// Optimal global alignment score of `a` vs `b` (linear gaps, score-only,
/// O(min) rolling rows).
pub fn global_score(a: &[u8], b: &[u8], s: &Scoring) -> i32 {
    let (m, n) = (a.len(), b.len());
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| j * s.gap_extend).collect();
    let mut cur = vec![0i32; n + 1];
    for i in 1..=m {
        cur[0] = i as i32 * s.gap_extend;
        for j in 1..=n {
            let diag = prev[j - 1] + s.subst(a[i - 1], b[j - 1]);
            let up = prev[j] + s.gap_extend;
            let left = cur[j - 1] + s.gap_extend;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Optimal global alignment with full traceback.
pub fn global_align(a: &[u8], b: &[u8], s: &Scoring) -> GlobalResult {
    let (m, n) = (a.len(), b.len());
    let w = n + 1;
    let mut dp = vec![0i32; (m + 1) * w];
    // Traceback codes: 0 diag, 1 up (delete), 2 left (insert).
    let mut tb = vec![0u8; (m + 1) * w];
    for j in 1..=n {
        dp[j] = j as i32 * s.gap_extend;
        tb[j] = 2;
    }
    for i in 1..=m {
        dp[i * w] = i as i32 * s.gap_extend;
        tb[i * w] = 1;
        for j in 1..=n {
            let diag = dp[(i - 1) * w + j - 1] + s.subst(a[i - 1], b[j - 1]);
            let up = dp[(i - 1) * w + j] + s.gap_extend;
            let left = dp[i * w + j - 1] + s.gap_extend;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1)
            } else {
                (left, 2)
            };
            dp[i * w + j] = best;
            tb[i * w + j] = dir;
        }
    }
    let mut ops = Vec::with_capacity(m + n);
    let (mut i, mut j) = (m, n);
    while i > 0 || j > 0 {
        match tb[i * w + j] {
            0 if i > 0 && j > 0 => {
                ops.push(if a[i - 1] == b[j - 1] && pgasm_seq::is_base_code(a[i - 1]) {
                    AlignOp::Match
                } else {
                    AlignOp::Mismatch
                });
                i -= 1;
                j -= 1;
            }
            1 => {
                ops.push(AlignOp::Delete);
                i -= 1;
            }
            _ => {
                ops.push(AlignOp::Insert);
                j -= 1;
            }
        }
    }
    ops.reverse();
    GlobalResult { score: dp[m * w + n], ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn s() -> Scoring {
        Scoring { match_score: 1, mismatch: -1, gap_open: -2, gap_extend: -2 }
    }

    #[test]
    fn identical_sequences() {
        let a = DnaSeq::from("ACGTACGT");
        let r = global_align(a.codes(), a.codes(), &s());
        assert_eq!(r.score, 8);
        assert!(r.ops.iter().all(|&op| op == AlignOp::Match));
    }

    #[test]
    fn single_substitution() {
        let a = DnaSeq::from("ACGT");
        let b = DnaSeq::from("AGGT");
        let r = global_align(a.codes(), b.codes(), &s());
        assert_eq!(r.score, 3 - 1);
        assert_eq!(r.ops.iter().filter(|&&o| o == AlignOp::Mismatch).count(), 1);
    }

    #[test]
    fn single_gap() {
        let a = DnaSeq::from("ACGT");
        let b = DnaSeq::from("ACT");
        let r = global_align(a.codes(), b.codes(), &s());
        assert_eq!(r.score, 3 - 2);
        assert_eq!(r.ops.iter().filter(|&&o| o == AlignOp::Delete).count(), 1);
    }

    #[test]
    fn empty_vs_nonempty() {
        let a = DnaSeq::from("ACG");
        let r = global_align(a.codes(), &[], &s());
        assert_eq!(r.score, -6);
        assert_eq!(r.ops, vec![AlignOp::Delete; 3]);
        assert_eq!(global_score(&[], &[], &s()), 0);
    }

    #[test]
    fn score_matches_traceback_version() {
        let a = DnaSeq::from("ACGTTGCAAGGCT");
        let b = DnaSeq::from("AGTTGGCAAGCGT");
        let sc = s();
        assert_eq!(global_score(a.codes(), b.codes(), &sc), global_align(a.codes(), b.codes(), &sc).score);
    }

    #[test]
    fn ops_consume_both_sequences() {
        let a = DnaSeq::from("ACGTTGCA");
        let b = DnaSeq::from("AGTTCA");
        let r = global_align(a.codes(), b.codes(), &s());
        let consumed_a = r.ops.iter().filter(|o| !matches!(o, AlignOp::Insert)).count();
        let consumed_b = r.ops.iter().filter(|o| !matches!(o, AlignOp::Delete)).count();
        assert_eq!(consumed_a, a.len());
        assert_eq!(consumed_b, b.len());
    }
}
