//! # pgasm-align — pairwise alignment substrate
//!
//! Dynamic-programming alignment kernels used throughout the framework:
//!
//! - [`global`] — Needleman–Wunsch global alignment (linear gap costs).
//! - [`local`] — Smith–Waterman local alignment.
//! - [`affine`] — Gotoh's affine-gap global alignment, the "improved
//!   algorithm for matching biological sequences" the paper cites for
//!   overlap scoring.
//! - [`overlap`] — semi-global *suffix–prefix* alignment, the operation
//!   the clustering phase performs on every selected promising pair
//!   (§4: "a high quality alignment between a suffix of one and a prefix
//!   of the other"), plus a banded variant anchored at the maximal match
//!   that triggered the pair.
//! - [`wmer`] — the classical fixed-length w-mer lookup-table filter
//!   (Pearson–Lipman style), implemented as the *baseline* the paper
//!   argues against: a single maximal match of length ℓ shows up as
//!   ℓ − w + 1 separate w-matches here.
//!
//! All kernels operate on the coded alphabet of `pgasm-seq`; masked bases
//! ([`pgasm_seq::MASK`]) never match anything, including each other.

pub mod affine;
pub mod global;
pub mod local;
pub mod overlap;
pub mod scoring;
pub mod simd;
pub mod wmer;

pub use overlap::{
    banded_overlap_align, overlap_align, overlap_align_quality, overlap_align_quality_with,
    overlap_align_simd, overlap_align_two_phase, AlignKernel, AlignScratch, OverlapResult, SimdOpts,
};
pub use scoring::{AcceptCriteria, Scoring};
