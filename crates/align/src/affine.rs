//! Gotoh affine-gap global alignment.
//!
//! Affine gap costs (`gap_open + k · gap_extend` for a k-column gap)
//! model sequencing insertions/deletions better than linear costs; this
//! is the Gotoh (1982) algorithm the paper cites for overlap scoring.

use crate::scoring::Scoring;

const NEG: i32 = i32::MIN / 4;

/// Optimal global alignment score with affine gap costs, score-only,
/// O(min(m, n)) memory.
pub fn affine_global_score(a: &[u8], b: &[u8], s: &Scoring) -> i32 {
    let (m, n) = (a.len(), b.len());
    // M: last column aligned; X: gap in b (vertical); Y: gap in a (horizontal).
    let mut m_prev = vec![NEG; n + 1];
    let mut x_prev = vec![NEG; n + 1];
    let mut y_prev = vec![NEG; n + 1];
    m_prev[0] = 0;
    for (j, y) in y_prev.iter_mut().enumerate().skip(1) {
        *y = s.gap_open + j as i32 * s.gap_extend;
    }
    let mut m_cur = vec![NEG; n + 1];
    let mut x_cur = vec![NEG; n + 1];
    let mut y_cur = vec![NEG; n + 1];
    for i in 1..=m {
        m_cur[0] = NEG;
        y_cur[0] = NEG;
        x_cur[0] = s.gap_open + i as i32 * s.gap_extend;
        for j in 1..=n {
            let sub = s.subst(a[i - 1], b[j - 1]);
            m_cur[j] = sub + m_prev[j - 1].max(x_prev[j - 1]).max(y_prev[j - 1]);
            x_cur[j] = (m_prev[j] + s.gap_open + s.gap_extend).max(x_prev[j] + s.gap_extend);
            y_cur[j] = (m_cur[j - 1] + s.gap_open + s.gap_extend).max(y_cur[j - 1] + s.gap_extend);
        }
        std::mem::swap(&mut m_prev, &mut m_cur);
        std::mem::swap(&mut x_prev, &mut x_cur);
        std::mem::swap(&mut y_prev, &mut y_cur);
    }
    m_prev[n].max(x_prev[n]).max(y_prev[n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn s() -> Scoring {
        Scoring { match_score: 1, mismatch: -2, gap_open: -3, gap_extend: -1 }
    }

    #[test]
    fn identical() {
        let a = DnaSeq::from("ACGTACGT");
        assert_eq!(affine_global_score(a.codes(), a.codes(), &s()), 8);
    }

    #[test]
    fn one_long_gap_cheaper_than_two_short() {
        // Affine costs should prefer one contiguous 2-gap (open once).
        let a = DnaSeq::from("ACGGGT");
        let b = DnaSeq::from("ACT");
        // Best: align AC..T with one 3-gap: 3 matches? a=ACGGGT vs b=ACT:
        // A C T matched, gap of 3 → 3*1 + (-3 - 3*1) = 3 - 6 = -3.
        assert_eq!(affine_global_score(a.codes(), b.codes(), &s()), -3);
    }

    #[test]
    fn empty_cases() {
        let a = DnaSeq::from("ACG");
        assert_eq!(affine_global_score(&[], &[], &s()), 0);
        assert_eq!(affine_global_score(a.codes(), &[], &s()), -3 - 3);
        assert_eq!(affine_global_score(&[], a.codes(), &s()), -3 - 3);
    }

    #[test]
    fn substitution_vs_gap_tradeoff() {
        let a = DnaSeq::from("ACGT");
        let b = DnaSeq::from("AGGT");
        // One mismatch (-2) beats two gaps (-4 -4): 3 - 2 = 1.
        assert_eq!(affine_global_score(a.codes(), b.codes(), &s()), 1);
    }

    #[test]
    fn symmetric() {
        let a = DnaSeq::from("ACGTTGCA");
        let b = DnaSeq::from("AGTTGGCA");
        let sc = s();
        assert_eq!(
            affine_global_score(a.codes(), b.codes(), &sc),
            affine_global_score(b.codes(), a.codes(), &sc)
        );
    }

    #[test]
    fn reduces_to_linear_when_open_is_zero() {
        let sc_affine = Scoring { match_score: 1, mismatch: -1, gap_open: 0, gap_extend: -2 };
        let a = DnaSeq::from("ACGTTGCAAG");
        let b = DnaSeq::from("AGTTGCAG");
        let affine = affine_global_score(a.codes(), b.codes(), &sc_affine);
        let linear = crate::global::global_score(a.codes(), b.codes(), &sc_affine);
        assert_eq!(affine, linear);
    }
}
