//! Property-based verification of the promising-pair generator against
//! the exhaustive maximal-match oracle, over random fragment sets with
//! planted overlaps and masked regions.

use pgasm_gst::brute;
use pgasm_gst::{GenMode, Gst, GstConfig, PairGenerator, PromisingPair};
use pgasm_seq::{DnaSeq, FragmentStore};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// A random DNA string over a deliberately small alphabet region so that
/// shared substrings (and thus maximal matches) actually occur.
fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, len).prop_map(DnaSeq::from_codes)
}

/// A fragment set in which later fragments may copy a window of earlier
/// ones (planting genuine overlaps), with optional masking.
fn fragment_set() -> impl Strategy<Value = FragmentStore> {
    (
        proptest::collection::vec(dna(12..40), 2..7),
        proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>(), 0usize..20),
            0..4,
        ),
        proptest::collection::vec((any::<prop::sample::Index>(), 0usize..30, 1usize..6), 0..3),
    )
        .prop_map(|(mut seqs, copies, masks)| {
            // Plant copies: append a window of one sequence onto another.
            for (src, dst, off) in copies {
                let si = src.index(seqs.len());
                let di = dst.index(seqs.len());
                if si == di {
                    continue;
                }
                let window: Vec<u8> = {
                    let s = &seqs[si];
                    let start = off.min(s.len().saturating_sub(1));
                    s.codes()[start..(start + 15).min(s.len())].to_vec()
                };
                for c in window {
                    seqs[di].push_code(c);
                }
            }
            // Mask random ranges.
            for (idx, start, len) in masks {
                let i = idx.index(seqs.len());
                let l = seqs[i].len();
                if l == 0 {
                    continue;
                }
                let s = start.min(l - 1);
                seqs[i].mask_range(s, (s + len).min(l));
            }
            FragmentStore::from_seqs(seqs)
        })
}

fn generate(st: &FragmentStore, w: usize, psi: usize, mode: GenMode) -> Vec<PromisingPair> {
    let gst = Gst::build(st, GstConfig { w, psi });
    PairGenerator::new(gst, mode, |_, _| false).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AllMatches mode emits exactly the set of maximal-match
    /// occurrences found by brute force — no more, no fewer.
    #[test]
    fn all_matches_equals_oracle(st in fragment_set(), psi in 4usize..8) {
        let w = 3.min(psi);
        let pairs = generate(&st, w, psi, GenMode::AllMatches);
        let got: HashSet<(u32, u32, u32, u32, u32)> =
            pairs.iter().map(|p| (p.a.0, p.b.0, p.a_pos, p.b_pos, p.match_len)).collect();
        prop_assert_eq!(got.len(), pairs.len(), "duplicate emissions");
        let expected: HashSet<(u32, u32, u32, u32, u32)> =
            brute::all_maximal_matches(&st, psi).iter()
                .map(|m| (m.a, m.b, m.a_pos, m.b_pos, m.len)).collect();
        prop_assert_eq!(got, expected);
    }

    /// DupElim mode covers every distinct overlapping pair at least once
    /// and never exceeds the pair's distinct-maximal-match count.
    #[test]
    fn dup_elim_complete_and_bounded(st in fragment_set(), psi in 4usize..8) {
        let w = 3.min(psi);
        let pairs = generate(&st, w, psi, GenMode::DupElim);
        let matches = brute::all_maximal_matches(&st, psi);
        let expected: HashSet<(u32, u32)> = brute::distinct_pairs(&matches).into_iter().collect();
        let got: HashSet<(u32, u32)> = pairs.iter().map(|p| (p.a.0, p.b.0)).collect();
        prop_assert_eq!(&got, &expected);
        let mut match_count: HashMap<(u32, u32), usize> = HashMap::new();
        for m in &matches {
            *match_count.entry((m.a, m.b)).or_default() += 1;
        }
        let mut gen_count: HashMap<(u32, u32), usize> = HashMap::new();
        for p in &pairs {
            *gen_count.entry((p.a.0, p.b.0)).or_default() += 1;
        }
        for (pair, g) in gen_count {
            prop_assert!(g <= match_count[&pair], "pair {:?} overgenerated", pair);
        }
    }

    /// Both modes emit pairs in non-increasing maximal-match length, and
    /// every seed is a genuine exact match of the claimed length.
    #[test]
    fn ordering_and_seed_validity(st in fragment_set(), psi in 4usize..8) {
        let w = 3.min(psi);
        for mode in [GenMode::AllMatches, GenMode::DupElim] {
            let pairs = generate(&st, w, psi, mode);
            for win in pairs.windows(2) {
                prop_assert!(win[0].match_len >= win[1].match_len);
            }
            for p in &pairs {
                let a = st.get(p.a);
                let b = st.get(p.b);
                let len = p.match_len as usize;
                prop_assert!(p.a_pos as usize + len <= a.len());
                prop_assert!(p.b_pos as usize + len <= b.len());
                let sa = &a[p.a_pos as usize..p.a_pos as usize + len];
                let sb = &b[p.b_pos as usize..p.b_pos as usize + len];
                prop_assert_eq!(sa, sb);
                prop_assert!(sa.iter().all(|&c| pgasm_seq::is_base_code(c)), "seed crosses a mask");
            }
        }
    }

    /// The batch interface yields exactly the same stream as plain
    /// iteration (resumability property the master–worker design needs).
    #[test]
    fn batching_is_transparent(st in fragment_set(), batch in 1usize..7) {
        let whole = generate(&st, 3, 5, GenMode::DupElim);
        let gst = Gst::build(&st, GstConfig { w: 3, psi: 5 });
        let mut g = PairGenerator::new(gst, GenMode::DupElim, |_, _| false);
        let mut batched = Vec::new();
        while g.next_batch(batch, &mut batched) > 0 {}
        prop_assert_eq!(batched, whole);
    }
}
