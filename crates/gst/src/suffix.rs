//! Suffix enumeration and w-prefix bucketing.
//!
//! §6: "The first step is to sort all suffixes based on their w-length
//! prefixes … each processor partitions the suffixes of its fragments
//! into |Σ|^w buckets based on their first w characters." A bucket key is
//! the 2-bit-packed w-mer; only suffixes with at least `w` unmasked
//! characters remaining in their run can seed a maximal match of length
//! ≥ ψ ≥ w, so shorter suffixes are dropped at enumeration time.

use pgasm_seq::{FragmentStore, KmerIter, SeqId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One suffix of one stored sequence, bounded by its unmasked run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suffix {
    /// The sequence the suffix belongs to.
    pub seq: u32,
    /// Start position within the sequence.
    pub pos: u32,
    /// Remaining length: distance from `pos` to the end of the unmasked
    /// run containing it (matches cannot cross masked bases).
    pub rem: u32,
}

/// Enumerate `(bucket_key, suffix)` for the given sequences of `store`:
/// every suffix position whose next `w` bases are unmasked, keyed by the
/// packed w-mer starting there.
pub fn enumerate_suffixes<'a>(
    store: &'a FragmentStore,
    seqs: &'a [SeqId],
    w: usize,
) -> impl Iterator<Item = (u64, Suffix)> + 'a {
    seqs.iter().flat_map(move |&sid| {
        let codes = store.get(sid);
        // Precompute run end for each position by scanning runs.
        RunSuffixes::new(codes, w)
            .map(move |(pos, rem, key)| (key, Suffix { seq: sid.0, pos: pos as u32, rem: rem as u32 }))
    })
}

/// Iterator over (pos, run_remaining, packed w-mer) for one sequence.
struct RunSuffixes<'a> {
    codes: &'a [u8],
    kmers: KmerIter<'a>,
    // Cache of run ends: computed lazily as we pass positions.
    run_end: usize,
}

impl<'a> RunSuffixes<'a> {
    fn new(codes: &'a [u8], w: usize) -> Self {
        RunSuffixes { codes, kmers: KmerIter::new(codes, w), run_end: 0 }
    }
}

impl Iterator for RunSuffixes<'_> {
    type Item = (usize, usize, u64);

    fn next(&mut self) -> Option<(usize, usize, u64)> {
        let (pos, key) = self.kmers.next()?;
        if pos >= self.run_end {
            // Find the end of the unmasked run containing `pos`.
            let mut e = pos;
            while e < self.codes.len() && pgasm_seq::is_base_code(self.codes[e]) {
                e += 1;
            }
            self.run_end = e;
        }
        Some((pos, self.run_end - pos, key))
    }
}

/// Bucket all suffixes of all sequences in `store` by their w-prefix.
/// Buckets with fewer than two suffixes cannot produce pairs and are
/// dropped (valid here because the view is *global*). Returns
/// `(key, suffixes)` in ascending key order for determinism.
pub fn bucket_suffixes(store: &FragmentStore, w: usize) -> Vec<(u64, Vec<Suffix>)> {
    let seqs: Vec<SeqId> = (0..store.num_seqs() as u32).map(SeqId).collect();
    let mut out = bucket_suffixes_of(store, &seqs, w);
    out.retain(|(_, v)| v.len() >= 2);
    out
}

/// As [`bucket_suffixes`] but restricted to the given sequences (the
/// per-rank form used by the parallel construction driver). Buckets
/// with a single *local* suffix are kept: another rank may contribute
/// further suffixes to the same bucket after redistribution.
pub fn bucket_suffixes_of(store: &FragmentStore, seqs: &[SeqId], w: usize) -> Vec<(u64, Vec<Suffix>)> {
    let mut map: HashMap<u64, Vec<Suffix>> = HashMap::new();
    for (key, suf) in enumerate_suffixes(store, seqs, w) {
        map.entry(key).or_default().push(suf);
    }
    let mut out: Vec<(u64, Vec<Suffix>)> = map.into_iter().collect();
    out.sort_unstable_by_key(|(k, _)| *k);
    out
}

/// Assign buckets to `p` parts balancing total suffix count — the
/// load-balance step of §6 ("the suffixes are then globally redistributed
/// such that those belonging to the same bucket are in the same
/// processor"). Greedy longest-processing-time assignment; returns for
/// each bucket index the part it belongs to.
pub fn assign_buckets(bucket_sizes: &[usize], p: usize) -> Vec<usize> {
    assert!(p > 0);
    let mut order: Vec<usize> = (0..bucket_sizes.len()).collect();
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(bucket_sizes[i]));
    let mut loads = vec![0usize; p];
    let mut assignment = vec![0usize; bucket_sizes.len()];
    for i in order {
        let (part, _) = loads.iter().enumerate().min_by_key(|&(_, &l)| l).expect("p > 0");
        assignment[i] = part;
        loads[part] += bucket_sizes[i];
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn store(seqs: &[&str]) -> FragmentStore {
        FragmentStore::from_seqs(seqs.iter().map(|s| DnaSeq::from(*s)))
    }

    #[test]
    fn enumerates_all_long_enough_suffixes() {
        let st = store(&["ACGTACG"]);
        let seqs = [SeqId(0)];
        let sufs: Vec<_> = enumerate_suffixes(&st, &seqs, 3).collect();
        // Positions 0..=4 have ≥3 bases remaining.
        assert_eq!(sufs.len(), 5);
        assert_eq!(sufs[0].1, Suffix { seq: 0, pos: 0, rem: 7 });
        assert_eq!(sufs[4].1, Suffix { seq: 0, pos: 4, rem: 3 });
    }

    #[test]
    fn masked_runs_bound_rem() {
        let mut s = DnaSeq::from("ACGTXACGT");
        s.mask_range(4, 5);
        let st = FragmentStore::from_seqs(vec![s]);
        let seqs = [SeqId(0)];
        let sufs: Vec<_> = enumerate_suffixes(&st, &seqs, 3).collect();
        // First run [0,4): positions 0,1 (rem 4,3); second run [5,9): 5,6.
        let rems: Vec<(u32, u32)> = sufs.iter().map(|(_, s)| (s.pos, s.rem)).collect();
        assert_eq!(rems, vec![(0, 4), (1, 3), (5, 4), (6, 3)]);
    }

    #[test]
    fn identical_prefixes_share_bucket() {
        let st = store(&["ACGTAAA", "ACGTTTT"]);
        let buckets = bucket_suffixes(&st, 4);
        let acgt_key = pgasm_seq::pack_kmer(DnaSeq::from("ACGT").codes()).unwrap();
        let b = buckets.iter().find(|(k, _)| *k == acgt_key).expect("shared ACGT bucket");
        assert_eq!(b.1.len(), 2);
        assert_eq!(b.1[0].seq, 0);
        assert_eq!(b.1[1].seq, 1);
    }

    #[test]
    fn singleton_buckets_dropped() {
        let st = store(&["AAAACCCC"]);
        let buckets = bucket_suffixes(&st, 4);
        // Suffix AAAA.., AAAC.., AACC.., ACCC.., CCCC — all distinct w-mers.
        assert!(buckets.is_empty());
    }

    #[test]
    fn bucket_assignment_balances() {
        let sizes = vec![10, 1, 1, 1, 1, 1, 1, 1, 1, 2];
        let a = assign_buckets(&sizes, 2);
        let load0: usize = sizes.iter().zip(&a).filter(|(_, &p)| p == 0).map(|(s, _)| s).sum();
        let load1: usize = sizes.iter().zip(&a).filter(|(_, &p)| p == 1).map(|(s, _)| s).sum();
        assert_eq!(load0 + load1, 20);
        assert!(load0.abs_diff(load1) <= 2, "loads {load0} vs {load1}");
    }

    #[test]
    fn assignment_with_more_parts_than_buckets() {
        let a = assign_buckets(&[5, 5], 8);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
    }
}
