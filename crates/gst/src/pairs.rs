//! On-demand promising-pair generation (paper §5, steps S1–S4).
//!
//! The generator walks the GST's eligible nodes in decreasing
//! string-depth order and, at each node, emits fragment pairs by
//! cross-producting `lsets` — at a leaf, across different preceding-char
//! classes of its own suffixes (S3); at an internal node, across
//! different children and compatible classes (S4). Afterwards the
//! children's lsets are concatenated into the node in O(1) per class, so
//! total space stays linear and each pair costs O(1) amortised
//! (Lemma 2).
//!
//! Class-pair compatibility encodes left-maximality (condition C4):
//! two suffixes both preceded by the same real base can be extended left,
//! so only differing classes pair up — except λ (no left extension
//! possible), which pairs with everything including λ itself.
//!
//! Implemented as a resumable [`Iterator`]: the explicit cursor
//! (node → child pair → class pair → list positions) is what lets a
//! worker processor yield exactly the `r` pairs the master requested and
//! resume later (§7's flow control).

use crate::tree::{Gst, LAMBDA, NONE, NUM_CLASSES};
use pgasm_seq::SeqId;
use serde::{Deserialize, Serialize};

/// Class pairs for *leaf* nodes: unordered over one suffix set —
/// `c < c'`, plus (λ, λ) for pairs within the λ list.
const LEAF_CLASS_PAIRS: [(usize, usize); 11] =
    [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (LAMBDA, LAMBDA)];

/// Class pairs for *internal* nodes: ordered across two different
/// children — all `c ≠ c'`, plus (λ, λ). Both orders are needed because
/// the two sides draw from different children.
const INTERNAL_CLASS_PAIRS: [(usize, usize); 21] = [
    (0, 1),
    (0, 2),
    (0, 3),
    (0, 4),
    (1, 0),
    (1, 2),
    (1, 3),
    (1, 4),
    (2, 0),
    (2, 1),
    (2, 3),
    (2, 4),
    (3, 0),
    (3, 1),
    (3, 2),
    (3, 4),
    (4, 0),
    (4, 1),
    (4, 2),
    (4, 3),
    (LAMBDA, LAMBDA),
];

/// Pair generation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenMode {
    /// Generate every maximal-match occurrence (needed when alignments
    /// are anchored to the maximal matches).
    AllMatches,
    /// The paper's duplicate-elimination refinement: before generating
    /// at a node, retain only one arbitrary suffix occurrence per
    /// sequence across the children's lsets, so a pair is generated at
    /// most once per node (and at most once per *distinct* maximal
    /// match overall).
    DupElim,
}

/// A promising pair: two sequences sharing a maximal match of length
/// ≥ ψ, with the seed coordinates of that match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PromisingPair {
    /// Lower sequence id.
    pub a: SeqId,
    /// Higher sequence id.
    pub b: SeqId,
    /// Seed (maximal match) start in `a`.
    pub a_pos: u32,
    /// Seed start in `b`.
    pub b_pos: u32,
    /// Length of the maximal match at the generating node (its string
    /// depth). In [`GenMode::DupElim`] the retained occurrence may sit
    /// inside a longer match; the value is still a valid lower bound and
    /// the generation order key.
    pub match_len: u32,
}

struct NodeCursor {
    node: u32,
    children: Vec<u32>,
    is_leaf: bool,
    /// Child indices (leaf: both 0).
    ci: usize,
    cj: usize,
    /// Class-pair index; `usize::MAX` = before the first combo.
    cp: usize,
    /// Current elements in the two lists.
    pa: u32,
    pb: u32,
}

/// The resumable promising-pair generator. Consumes the [`Gst`]
/// (generation dissolves the lsets upward through the tree).
pub struct PairGenerator<F: FnMut(SeqId, SeqId) -> bool> {
    gst: Gst,
    mode: GenMode,
    /// Returns true to *drop* a candidate pair (e.g. the two strands of
    /// one fragment, or a non-canonical strand combination).
    skip: F,
    order_idx: usize,
    cursor: Option<NodeCursor>,
    seen: Vec<bool>,
    touched: Vec<u32>,
    /// Pairs emitted so far (after skip filtering).
    pub emitted: u64,
    /// Candidate pairs enumerated before skip filtering.
    pub enumerated: u64,
}

impl<F: FnMut(SeqId, SeqId) -> bool> PairGenerator<F> {
    /// Create a generator over `gst`. `skip(a, b)` (with `a < b`) drops
    /// unwanted pairs; same-sequence pairs are always dropped.
    pub fn new(gst: Gst, mode: GenMode, skip: F) -> Self {
        let num_seqs = gst.num_seqs;
        PairGenerator {
            gst,
            mode,
            skip,
            order_idx: 0,
            cursor: None,
            seen: vec![false; num_seqs],
            touched: Vec::new(),
            emitted: 0,
            enumerated: 0,
        }
    }

    /// Collect up to `n` further pairs into `out`; returns how many were
    /// produced (fewer only at exhaustion). This is the worker-side batch
    /// interface of the master–worker protocol.
    pub fn next_batch(&mut self, n: usize, out: &mut Vec<PromisingPair>) -> usize {
        let before = out.len();
        for _ in 0..n {
            match self.next() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out.len() - before
    }

    /// True once every eligible node has been fully enumerated.
    pub fn is_exhausted(&self) -> bool {
        self.cursor.is_none() && self.order_idx >= self.gst.order.len()
    }

    /// Set up the cursor for the next node in processing order.
    fn open_next_node(&mut self) -> bool {
        let Some(&node) = self.gst.order.get(self.order_idx) else {
            return false;
        };
        self.order_idx += 1;
        let is_leaf = self.gst.nodes[node as usize].first_child == NONE;
        let children = if is_leaf { vec![node] } else { self.gst.children(node) };
        if self.mode == GenMode::DupElim {
            self.dedup_children(&children);
        }
        let mut cur = NodeCursor {
            node,
            children,
            is_leaf,
            ci: 0,
            cj: if is_leaf { 0 } else { 1 },
            cp: usize::MAX,
            pa: NONE,
            pb: NONE,
        };
        if self.next_combo(&mut cur) {
            self.cursor = Some(cur);
        } else {
            // No pairs at this node: still merge lsets upward.
            self.finalize_node(node, is_leaf);
        }
        true
    }

    /// Retain one arbitrary occurrence per sequence across all lsets of
    /// all `children` (paper's boolean-array scheme, §5).
    fn dedup_children(&mut self, children: &[u32]) {
        for &child in children {
            let slot = self.gst.nodes[child as usize].lset;
            debug_assert_ne!(slot, NONE, "eligible node's child must have an lset slot");
            for class in 0..NUM_CLASSES {
                let mut head = self.gst.lset_head[slot as usize][class];
                let mut prev = NONE;
                let mut e = head;
                let mut tail = NONE;
                while e != NONE {
                    let next = self.gst.suf_next[e as usize];
                    let seq = self.gst.suf_seq[e as usize] as usize;
                    if self.seen[seq] {
                        // Splice out.
                        if prev == NONE {
                            head = next;
                        } else {
                            self.gst.suf_next[prev as usize] = next;
                        }
                    } else {
                        self.seen[seq] = true;
                        self.touched.push(seq as u32);
                        prev = e;
                        tail = e;
                    }
                    e = next;
                }
                self.gst.lset_head[slot as usize][class] = head;
                self.gst.lset_tail[slot as usize][class] = tail;
            }
        }
        for &s in &self.touched {
            self.seen[s as usize] = false;
        }
        self.touched.clear();
    }

    /// Advance `(ci, cj, cp)` to the next combo with a non-empty element
    /// pair and position `(pa, pb)` at its first pair. Returns false when
    /// the node is exhausted.
    fn next_combo(&mut self, cur: &mut NodeCursor) -> bool {
        let class_pairs: &[(usize, usize)] =
            if cur.is_leaf { &LEAF_CLASS_PAIRS } else { &INTERNAL_CLASS_PAIRS };
        loop {
            // Advance cp (usize::MAX → 0).
            cur.cp = cur.cp.wrapping_add(1);
            if cur.cp >= class_pairs.len() {
                cur.cp = 0;
                if cur.is_leaf {
                    return false; // single pseudo-child pair only
                }
                cur.cj += 1;
                if cur.cj >= cur.children.len() {
                    cur.ci += 1;
                    cur.cj = cur.ci + 1;
                    if cur.cj >= cur.children.len() {
                        return false;
                    }
                }
                // Re-enter with cp = 0 (wrapping_add above already set it).
            }
            let (c, cprime) = class_pairs[cur.cp];
            let slot_a = self.gst.nodes[cur.children[cur.ci] as usize].lset as usize;
            let slot_b = self.gst.nodes[cur.children[cur.cj] as usize].lset as usize;
            let head_a = self.gst.lset_head[slot_a][c];
            if head_a == NONE {
                continue;
            }
            if cur.is_leaf && c == LAMBDA && cprime == LAMBDA {
                // Unordered pairs within one list: need ≥ 2 elements.
                let second = self.gst.suf_next[head_a as usize];
                if second == NONE {
                    continue;
                }
                cur.pa = head_a;
                cur.pb = second;
                return true;
            }
            let head_b = self.gst.lset_head[slot_b][cprime];
            if head_b == NONE {
                continue;
            }
            cur.pa = head_a;
            cur.pb = head_b;
            return true;
        }
    }

    /// Advance `(pa, pb)` within the current combo; false when the combo
    /// is exhausted.
    fn step_elements(&mut self, cur: &mut NodeCursor) -> bool {
        let class_pairs: &[(usize, usize)] =
            if cur.is_leaf { &LEAF_CLASS_PAIRS } else { &INTERNAL_CLASS_PAIRS };
        let (c, cprime) = class_pairs[cur.cp];
        let same_list = cur.is_leaf && c == LAMBDA && cprime == LAMBDA;
        let next_b = self.gst.suf_next[cur.pb as usize];
        if next_b != NONE {
            cur.pb = next_b;
            return true;
        }
        let next_a = self.gst.suf_next[cur.pa as usize];
        if next_a == NONE {
            return false;
        }
        cur.pa = next_a;
        cur.pb = if same_list {
            self.gst.suf_next[cur.pa as usize]
        } else {
            let slot_b = self.gst.nodes[cur.children[cur.cj] as usize].lset as usize;
            self.gst.lset_head[slot_b][cprime]
        };
        cur.pb != NONE
    }

    /// After all pairs at a node: concatenate children lsets into the
    /// node (internal nodes only; a leaf's lsets already live on it).
    fn finalize_node(&mut self, node: u32, is_leaf: bool) {
        if is_leaf {
            return;
        }
        let slot = self.gst.nodes[node as usize].lset;
        debug_assert_ne!(slot, NONE);
        for child in self.gst.children(node) {
            let cslot = self.gst.nodes[child as usize].lset;
            for class in 0..NUM_CLASSES {
                self.gst.lset_concat(slot, cslot, class);
            }
        }
    }

    /// Underlying tree statistics (valid also mid-generation).
    pub fn gst_stats(&self) -> crate::tree::GstStats {
        self.gst.stats()
    }
}

impl<F: FnMut(SeqId, SeqId) -> bool> Iterator for PairGenerator<F> {
    type Item = PromisingPair;

    fn next(&mut self) -> Option<PromisingPair> {
        loop {
            if self.cursor.is_none() && !self.open_next_node() {
                return None;
            }
            let Some(mut cur) = self.cursor.take() else {
                continue; // node had no pairs; try the next one
            };
            let (pa, pb) = (cur.pa, cur.pb);
            let depth = self.gst.nodes[cur.node as usize].depth;
            let node = cur.node;
            let is_leaf = cur.is_leaf;
            // Advance before emitting so the cursor is always "next".
            let more = self.step_elements(&mut cur) || self.next_combo(&mut cur);
            if more {
                self.cursor = Some(cur);
            } else {
                self.finalize_node(node, is_leaf);
            }
            // Materialise and filter the candidate.
            let (sa, pa_pos) = (self.gst.suf_seq[pa as usize], self.gst.suf_pos[pa as usize]);
            let (sb, pb_pos) = (self.gst.suf_seq[pb as usize], self.gst.suf_pos[pb as usize]);
            self.enumerated += 1;
            if sa == sb {
                continue;
            }
            let (a, b, a_pos, b_pos) =
                if sa < sb { (sa, sb, pa_pos, pb_pos) } else { (sb, sa, pb_pos, pa_pos) };
            if (self.skip)(SeqId(a), SeqId(b)) {
                continue;
            }
            self.emitted += 1;
            return Some(PromisingPair { a: SeqId(a), b: SeqId(b), a_pos, b_pos, match_len: depth });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::tree::{Gst, GstConfig};
    use pgasm_seq::{DnaSeq, FragmentStore};
    use std::collections::{HashMap, HashSet};

    fn store(seqs: &[&str]) -> FragmentStore {
        FragmentStore::from_seqs(seqs.iter().map(|s| DnaSeq::from(*s)))
    }

    fn generate_all(st: &FragmentStore, w: usize, psi: usize, mode: GenMode) -> Vec<PromisingPair> {
        let gst = Gst::build(st, GstConfig { w, psi });
        PairGenerator::new(gst, mode, |_, _| false).collect()
    }

    #[test]
    fn simple_overlap_pair_found() {
        let st = store(&["TTTTACGTACGT", "ACGTACGTGGGG"]);
        let pairs = generate_all(&st, 4, 8, GenMode::DupElim);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().any(|p| p.a == SeqId(0) && p.b == SeqId(1) && p.match_len >= 8));
    }

    #[test]
    fn all_matches_mode_equals_brute_force() {
        let st = store(&["AAACGTACGTTTCCGG", "CCACGTACGTAAGGCC", "GGGGTTTTACGTACGT", "TTACGTACTTACGTAC"]);
        let psi = 5;
        let pairs = generate_all(&st, 3, psi, GenMode::AllMatches);
        let got: HashSet<(u32, u32, u32, u32, u32)> =
            pairs.iter().map(|p| (p.a.0, p.b.0, p.a_pos, p.b_pos, p.match_len)).collect();
        assert_eq!(got.len(), pairs.len(), "AllMatches must not emit duplicates");
        let expected: HashSet<(u32, u32, u32, u32, u32)> = brute::all_maximal_matches(&st, psi)
            .iter()
            .map(|m| (m.a, m.b, m.a_pos, m.b_pos, m.len))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn dup_elim_covers_all_distinct_pairs() {
        let st = store(&["AAACGTACGTTTCCGGAACCGGTT", "CCACGTACGTAAGGCCAACCGGTT", "GGGGTTTTACGTACGTAACCGGTT"]);
        let psi = 5;
        let pairs = generate_all(&st, 3, psi, GenMode::DupElim);
        let got_pairs: HashSet<(u32, u32)> = pairs.iter().map(|p| (p.a.0, p.b.0)).collect();
        let matches = brute::all_maximal_matches(&st, psi);
        let expected: HashSet<(u32, u32)> = brute::distinct_pairs(&matches).into_iter().collect();
        assert_eq!(got_pairs, expected);
        // Generation count per pair is bounded by its distinct maximal
        // match count.
        let mut match_count: HashMap<(u32, u32), usize> = HashMap::new();
        for m in &matches {
            *match_count.entry((m.a, m.b)).or_default() += 1;
        }
        let mut gen_count: HashMap<(u32, u32), usize> = HashMap::new();
        for p in &pairs {
            *gen_count.entry((p.a.0, p.b.0)).or_default() += 1;
        }
        for (pair, &g) in &gen_count {
            assert!(g <= match_count[pair], "pair {pair:?} generated {g} > {} matches", match_count[pair]);
        }
    }

    #[test]
    fn emission_order_is_nonincreasing_match_len() {
        let st = store(&[
            "AAACGTACGTTTCCGGAACCGGTT",
            "CCACGTACGTAAGGCCAACCGGTT",
            "GGGGTTTTACGTACGTAACCGGTT",
            "ACGTACGTACGTACGTAACCGGTT",
        ]);
        for mode in [GenMode::AllMatches, GenMode::DupElim] {
            let pairs = generate_all(&st, 3, 4, mode);
            for w in pairs.windows(2) {
                assert!(w[0].match_len >= w[1].match_len, "order violated in {mode:?}: {w:?}");
            }
        }
    }

    #[test]
    fn seed_positions_are_real_matches() {
        let st = store(&["AAACGTACGTTTCCGG", "CCACGTACGTAAGGCC"]);
        let pairs = generate_all(&st, 3, 5, GenMode::AllMatches);
        for p in &pairs {
            let a = st.get(p.a);
            let b = st.get(p.b);
            let len = p.match_len as usize;
            assert_eq!(
                &a[p.a_pos as usize..p.a_pos as usize + len],
                &b[p.b_pos as usize..p.b_pos as usize + len],
                "seed is not an exact match: {p:?}"
            );
        }
    }

    #[test]
    fn skip_filter_applied() {
        let st = store(&["TTTTACGTACGT", "ACGTACGTGGGG"]);
        let gst = Gst::build(&st, GstConfig { w: 4, psi: 8 });
        let pairs: Vec<_> = PairGenerator::new(gst, GenMode::DupElim, |_, _| true).collect();
        assert!(pairs.is_empty());
    }

    #[test]
    fn same_sequence_pairs_never_emitted() {
        // Repeated region within one sequence.
        let st = store(&["ACGTACGTAAACGTACGT", "ACGTACGTCCACGTACGT"]);
        let pairs = generate_all(&st, 4, 6, GenMode::AllMatches);
        for p in &pairs {
            assert_ne!(p.a, p.b);
        }
    }

    #[test]
    fn batch_interface_resumes_correctly() {
        let st = store(&["AAACGTACGTTTCCGGAACCGGTT", "CCACGTACGTAAGGCCAACCGGTT", "GGGGTTTTACGTACGTAACCGGTT"]);
        let gst = Gst::build(&st, GstConfig { w: 3, psi: 4 });
        let all: Vec<_> = PairGenerator::new(gst, GenMode::AllMatches, |_, _| false).collect();
        let gst2 = Gst::build(&st, GstConfig { w: 3, psi: 4 });
        let mut g = PairGenerator::new(gst2, GenMode::AllMatches, |_, _| false);
        let mut batched = Vec::new();
        loop {
            let got = g.next_batch(3, &mut batched);
            if got == 0 {
                break;
            }
        }
        assert!(g.is_exhausted());
        assert_eq!(batched, all);
    }

    #[test]
    fn masked_store_generates_nothing() {
        let mut a = DnaSeq::from("ACGTACGTACGT");
        a.mask_range(0, 12);
        let st = FragmentStore::from_seqs(vec![a, DnaSeq::from("ACGTACGTACGT")]);
        let pairs = generate_all(&st, 4, 4, GenMode::AllMatches);
        assert!(pairs.is_empty());
    }

    #[test]
    fn double_stranded_store_mirror_pairs() {
        // Fragment 1 overlaps the reverse complement of fragment 0.
        let f0 = DnaSeq::from("TTTTACGTTGCAGCAT");
        let f1 = f0.reverse_complement(); // identical overlap on opposite strand
        let st = FragmentStore::from_seqs(vec![f0, f1]).with_reverse_complements();
        let pairs = generate_all(&st, 4, 10, GenMode::DupElim);
        // seq 0 (f0 fwd) matches seq 3 (f1 rev) fully; mirrored as (1, 2).
        assert!(pairs.iter().any(|p| (p.a.0, p.b.0) == (0, 3)), "{pairs:?}");
        assert!(pairs.iter().any(|p| (p.a.0, p.b.0) == (1, 2)), "{pairs:?}");
    }
}
