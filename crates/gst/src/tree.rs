//! The generalized suffix tree, stored as an arena forest.
//!
//! One compacted trie per w-prefix bucket, built depth-first by
//! character partitioning (§6: "partition all suffixes in the bucket into
//! at most |Σ| sub-buckets based on their respective (w+1)-th characters
//! … recursively applied … until all suffixes are separated or their
//! lengths exhausted"). Suffixes that exhaust at the same point form a
//! *leaf* holding several suffixes — the arena equivalent of the classic
//! per-string `$` terminator leaves.
//!
//! Every node at string-depth ≥ ψ carries `lsets`: per preceding
//! character class (A, C, G, T, or λ for "no left extension possible"),
//! an index-linked list of the suffixes in its subtree. Lists support
//! O(1) concatenation, which the pair generator relies on for its O(1)
//! amortised per-pair bound (paper Lemma 2).

use crate::suffix::Suffix;
use pgasm_seq::alphabet::{is_base_code, SIGMA};
use pgasm_seq::FragmentStore;
use serde::{Deserialize, Serialize};

/// Sentinel for "no node / no suffix / no slot".
pub const NONE: u32 = u32::MAX;

/// Number of lset character classes: the four bases plus λ.
pub const NUM_CLASSES: usize = SIGMA + 1;

/// Index of the λ class (suffix starts at position 0 or follows a masked
/// base, so it cannot be extended to the left).
pub const LAMBDA: usize = SIGMA;

/// Configuration of GST construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GstConfig {
    /// Prefix length used for bucketing (paper: w ≈ 11; must satisfy
    /// `w ≤ psi`).
    pub w: usize,
    /// Minimum maximal-match length ψ for a pair to be *promising*.
    pub psi: usize,
}

impl GstConfig {
    /// Validates the `w ≤ psi` requirement.
    pub fn validated(self) -> GstConfig {
        assert!(self.w >= 1 && self.w <= 31, "w must be in 1..=31");
        assert!(self.psi >= self.w, "psi ({}) must be ≥ w ({})", self.psi, self.w);
        self
    }
}

impl Default for GstConfig {
    fn default() -> Self {
        // Paper: w = 11 empirically appropriate; ψ = 20 is a typical
        // promising-pair cutoff at fragment scale.
        GstConfig { w: 11, psi: 20 }
    }
}

/// Anything that can hand out the code slice of a sequence. Implemented
/// by [`FragmentStore`] and by the per-rank local text of the parallel
/// driver.
pub trait TextSource {
    /// Code slice of sequence `seq`.
    fn seq_codes(&self, seq: u32) -> &[u8];
    /// Number of sequences addressable (bounds the duplicate-elimination
    /// marker array).
    fn num_seqs(&self) -> usize;
}

impl TextSource for FragmentStore {
    fn seq_codes(&self, seq: u32) -> &[u8] {
        self.get(pgasm_seq::SeqId(seq))
    }

    fn num_seqs(&self) -> usize {
        FragmentStore::num_seqs(self)
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// String depth (path-label length) of this node.
    pub depth: u32,
    /// First child, or NONE for a leaf.
    pub first_child: u32,
    /// Next sibling in the parent's child list.
    pub next_sibling: u32,
    /// lset slot index, or NONE when depth < ψ.
    pub lset: u32,
}

/// Construction and traversal statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GstStats {
    /// Buckets (subtrees) built.
    pub buckets: usize,
    /// Total nodes in the forest.
    pub nodes: usize,
    /// Total leaves.
    pub leaves: usize,
    /// Suffix entries indexed.
    pub suffixes: usize,
    /// Maximum string depth observed.
    pub max_depth: usize,
    /// Nodes eligible for pair generation (depth ≥ ψ).
    pub eligible_nodes: usize,
}

/// The generalized suffix tree forest over a set of sequences.
pub struct Gst {
    pub(crate) config: GstConfig,
    pub(crate) nodes: Vec<Node>,
    /// Per suffix entry: owning sequence.
    pub(crate) suf_seq: Vec<u32>,
    /// Per suffix entry: start position.
    pub(crate) suf_pos: Vec<u32>,
    /// Per suffix entry: linked-list next pointer within its lset.
    pub(crate) suf_next: Vec<u32>,
    /// lset list heads per slot, per class.
    pub(crate) lset_head: Vec<[u32; NUM_CLASSES]>,
    /// lset list tails per slot, per class.
    pub(crate) lset_tail: Vec<[u32; NUM_CLASSES]>,
    /// Node ids with depth ≥ ψ in processing order: decreasing depth,
    /// ties broken by decreasing creation index so children precede
    /// parents (an exhausted-suffix leaf shares its parent's depth).
    pub(crate) order: Vec<u32>,
    pub(crate) num_seqs: usize,
    pub(crate) stats: GstStats,
}

impl Gst {
    /// Build the GST over every sequence of `store` (serial path).
    pub fn build(store: &FragmentStore, config: GstConfig) -> Gst {
        let buckets = crate::suffix::bucket_suffixes(store, config.w);
        let bucket_vec: Vec<Vec<Suffix>> = buckets.into_iter().map(|(_, v)| v).collect();
        Gst::build_from_buckets(store, bucket_vec, config)
    }

    /// Build from pre-bucketed suffixes (the per-rank parallel path).
    /// Each bucket's suffixes must share their first `w` characters.
    pub fn build_from_buckets<T: TextSource>(text: &T, buckets: Vec<Vec<Suffix>>, config: GstConfig) -> Gst {
        let config = config.validated();
        let total_suffixes: usize = buckets.iter().map(|b| b.len()).sum();
        let mut gst = Gst {
            config,
            nodes: Vec::with_capacity(total_suffixes * 2),
            suf_seq: Vec::with_capacity(total_suffixes),
            suf_pos: Vec::with_capacity(total_suffixes),
            suf_next: Vec::with_capacity(total_suffixes),
            lset_head: Vec::new(),
            lset_tail: Vec::new(),
            order: Vec::new(),
            num_seqs: text.num_seqs(),
            stats: GstStats::default(),
        };
        gst.stats.buckets = buckets.len();
        for bucket in buckets {
            if bucket.len() < 2 {
                continue;
            }
            gst.build_bucket(text, bucket);
        }
        gst.stats.nodes = gst.nodes.len();
        gst.stats.suffixes = gst.suf_seq.len();
        gst.stats.leaves = gst.nodes.iter().filter(|n| n.first_child == NONE).count();
        gst.stats.max_depth = gst.nodes.iter().map(|n| n.depth as usize).max().unwrap_or(0);
        gst.finish_order();
        gst
    }

    /// Construction/size statistics.
    pub fn stats(&self) -> GstStats {
        self.stats
    }

    /// The configuration the tree was built with.
    pub fn config(&self) -> GstConfig {
        self.config
    }

    /// Number of sequences the tree was built over (bounds the
    /// duplicate-elimination marker array in the pair generator).
    pub fn num_seqs(&self) -> usize {
        self.num_seqs
    }

    /// Estimated resident bytes of the forest (paper §7.1 reports
    /// ~80 bytes per input character for their implementation; this
    /// reports ours for the same comparison).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.suf_seq.len() * 12
            + self.lset_head.len() * std::mem::size_of::<[u32; NUM_CLASSES]>() * 2
            + self.order.len() * 4
    }

    fn build_bucket<T: TextSource>(&mut self, text: &T, suffixes: Vec<Suffix>) {
        let w = self.config.w as u32;
        self.build_rec(text, suffixes, w);
    }

    /// Recursively build the subtree for `sufs`, which all share their
    /// first `depth` characters. Returns the subtree root node id.
    fn build_rec<T: TextSource>(&mut self, text: &T, mut sufs: Vec<Suffix>, mut depth: u32) -> u32 {
        loop {
            if sufs.len() == 1 {
                let s = sufs[0];
                return self.new_leaf(text, s.rem, &sufs);
            }
            // Partition by the character at `depth` (or exhaustion).
            let mut groups: [Vec<Suffix>; SIGMA] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
            let mut exhausted: Vec<Suffix> = Vec::new();
            for &s in &sufs {
                if s.rem == depth {
                    exhausted.push(s);
                } else {
                    let c = text.seq_codes(s.seq)[(s.pos + depth) as usize];
                    debug_assert!(is_base_code(c), "suffix runs past its unmasked run");
                    groups[c as usize].push(s);
                }
            }
            let nonempty = groups.iter().filter(|g| !g.is_empty()).count();
            if exhausted.is_empty() && nonempty == 1 {
                // Path compression: single outgoing edge, extend depth.
                sufs = groups.into_iter().find(|g| !g.is_empty()).expect("nonempty == 1");
                depth += 1;
                continue;
            }
            if nonempty == 0 {
                // All suffixes identical and exhausted: one leaf.
                return self.new_leaf(text, depth, &exhausted);
            }
            // Branching point (or exhaustion alongside continuation):
            // create an internal node at `depth`.
            let node = self.new_internal(depth);
            let mut last_child = NONE;
            if !exhausted.is_empty() {
                let leaf = self.new_leaf(text, depth, &exhausted);
                self.attach_child(node, leaf, &mut last_child);
            }
            for g in groups {
                if !g.is_empty() {
                    let child = self.build_rec(text, g, depth + 1);
                    self.attach_child(node, child, &mut last_child);
                }
            }
            return node;
        }
    }

    fn attach_child(&mut self, parent: u32, child: u32, last_child: &mut u32) {
        if *last_child == NONE {
            self.nodes[parent as usize].first_child = child;
        } else {
            self.nodes[*last_child as usize].next_sibling = child;
        }
        *last_child = child;
    }

    fn new_internal(&mut self, depth: u32) -> u32 {
        let lset = self.alloc_lset(depth);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { depth, first_child: NONE, next_sibling: NONE, lset });
        id
    }

    /// Create a leaf at string-depth `depth` holding `sufs` (all with
    /// `rem == depth`-equivalent content). The leaf's lsets are built
    /// immediately from the suffixes' preceding characters (paper S3).
    fn new_leaf<T: TextSource>(&mut self, text: &T, depth: u32, sufs: &[Suffix]) -> u32 {
        let lset = self.alloc_lset(depth);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { depth, first_child: NONE, next_sibling: NONE, lset });
        if lset != NONE {
            for &s in sufs {
                let entry = self.suf_seq.len() as u32;
                self.suf_seq.push(s.seq);
                self.suf_pos.push(s.pos);
                self.suf_next.push(NONE);
                let class = self.preceding_class(text, s);
                self.lset_push(lset, class, entry);
            }
        }
        id
    }

    /// The lset class of a suffix: its preceding character, or λ when at
    /// position 0 or preceded by a masked base (no left extension is
    /// possible in either case, which is what left-maximality needs).
    fn preceding_class<T: TextSource>(&self, text: &T, s: Suffix) -> usize {
        if s.pos == 0 {
            return LAMBDA;
        }
        let c = text.seq_codes(s.seq)[(s.pos - 1) as usize];
        if is_base_code(c) {
            c as usize
        } else {
            LAMBDA
        }
    }

    fn alloc_lset(&mut self, depth: u32) -> u32 {
        if (depth as usize) < self.config.psi {
            return NONE;
        }
        let slot = self.lset_head.len() as u32;
        self.lset_head.push([NONE; NUM_CLASSES]);
        self.lset_tail.push([NONE; NUM_CLASSES]);
        slot
    }

    pub(crate) fn lset_push(&mut self, slot: u32, class: usize, entry: u32) {
        let s = slot as usize;
        let tail = self.lset_tail[s][class];
        if tail == NONE {
            self.lset_head[s][class] = entry;
        } else {
            self.suf_next[tail as usize] = entry;
        }
        self.lset_tail[s][class] = entry;
        self.suf_next[entry as usize] = NONE;
    }

    /// O(1) concatenation of child list (slot `from`, class) onto slot
    /// `to` — paper: "the lsets at each node are maintained as linked
    /// lists to allow constant time union operations".
    pub(crate) fn lset_concat(&mut self, to: u32, from: u32, class: usize) {
        let (t, f) = (to as usize, from as usize);
        let fh = self.lset_head[f][class];
        if fh == NONE {
            return;
        }
        let tt = self.lset_tail[t][class];
        if tt == NONE {
            self.lset_head[t][class] = fh;
        } else {
            self.suf_next[tt as usize] = fh;
        }
        self.lset_tail[t][class] = self.lset_tail[f][class];
        self.lset_head[f][class] = NONE;
        self.lset_tail[f][class] = NONE;
    }

    /// Children of a node, in attachment order.
    pub(crate) fn children(&self, node: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut c = self.nodes[node as usize].first_child;
        while c != NONE {
            out.push(c);
            c = self.nodes[c as usize].next_sibling;
        }
        out
    }

    /// Counting sort of eligible nodes by decreasing depth, ties by
    /// decreasing creation index (children were created after parents).
    fn finish_order(&mut self) {
        let max_depth = self.stats.max_depth;
        let psi = self.config.psi;
        if max_depth < psi {
            self.order = Vec::new();
            return;
        }
        let mut by_depth: Vec<Vec<u32>> = vec![Vec::new(); max_depth + 1];
        for (i, n) in self.nodes.iter().enumerate() {
            if n.depth as usize >= psi {
                by_depth[n.depth as usize].push(i as u32);
            }
        }
        let mut order = Vec::new();
        for d in (psi..=max_depth).rev() {
            // Reverse creation order within equal depth.
            order.extend(by_depth[d].iter().rev().copied());
        }
        self.stats.eligible_nodes = order.len();
        self.order = order;
    }

    /// Iterate the eligible nodes in processing order (for tests).
    pub fn processing_order(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.order.iter().map(move |&id| (id, self.nodes[id as usize].depth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn store(seqs: &[&str]) -> FragmentStore {
        FragmentStore::from_seqs(seqs.iter().map(|s| DnaSeq::from(*s)))
    }

    #[test]
    fn empty_store_builds_empty_forest() {
        let st = store(&[]);
        let g = Gst::build(&st, GstConfig { w: 3, psi: 3 });
        assert_eq!(g.stats().nodes, 0);
        assert_eq!(g.processing_order().count(), 0);
    }

    #[test]
    fn shared_prefix_creates_branching_node() {
        let st = store(&["ACGTAAA", "ACGTTTT"]);
        let g = Gst::build(&st, GstConfig { w: 3, psi: 3 });
        let s = g.stats();
        assert!(s.nodes > 0);
        assert!(s.max_depth >= 4, "ACGT shared: depth ≥ 4, got {}", s.max_depth);
        // There must be an internal node at depth exactly 4 (ACGT) with
        // two children (A… and T…).
        let found = (0..g.nodes.len() as u32).any(|i| {
            let n = &g.nodes[i as usize];
            n.depth == 4 && n.first_child != NONE && g.children(i).len() == 2
        });
        assert!(found, "expected a binary branching node at depth 4");
    }

    #[test]
    fn order_is_decreasing_depth_children_first() {
        let st = store(&["ACGTACGTAA", "ACGTACGTTT", "CGTACGTAAG"]);
        let g = Gst::build(&st, GstConfig { w: 3, psi: 3 });
        let order: Vec<(u32, u32)> = g.processing_order().collect();
        assert!(!order.is_empty());
        for win in order.windows(2) {
            assert!(win[0].1 >= win[1].1, "depth order violated: {win:?}");
        }
        // Every child must appear before its parent.
        let position: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &(id, _))| (id, i)).collect();
        for (&id, &pos) in &position {
            for c in g.children(id) {
                if let Some(&cpos) = position.get(&c) {
                    assert!(cpos < pos, "child {c} after parent {id}");
                }
            }
        }
    }

    #[test]
    fn lsets_partition_by_preceding_char() {
        // "AACGT" and "CACGT" and "ACGT": suffix ACGT preceded by A, C, λ.
        let st = store(&["AACGT", "CACGT", "ACGT"]);
        let g = Gst::build(&st, GstConfig { w: 4, psi: 4 });
        // Find the node whose subtree holds all three ACGT suffixes: the
        // bucket of ACGT. It has depth 4 and three suffixes exhausted.
        let mut found = false;
        for (id, _) in g.processing_order() {
            let n = &g.nodes[id as usize];
            if n.lset == NONE {
                continue;
            }
            let slot = n.lset as usize;
            let count_class = |class: usize| {
                let mut c = 0;
                let mut e = g.lset_head[slot][class];
                while e != NONE {
                    c += 1;
                    e = g.suf_next[e as usize];
                }
                c
            };
            if n.depth == 4
                && n.first_child == NONE
                && count_class(0) + count_class(1) + count_class(LAMBDA) == 3
            {
                assert_eq!(count_class(0), 1, "one suffix preceded by A");
                assert_eq!(count_class(1), 1, "one suffix preceded by C");
                assert_eq!(count_class(LAMBDA), 1, "one suffix at position 0");
                found = true;
            }
        }
        assert!(found, "expected the ACGT leaf with 3 partitioned suffixes");
    }

    #[test]
    fn psi_limits_eligible_nodes() {
        let st = store(&["ACGTACGTAA", "ACGTACGTTT"]);
        let low = Gst::build(&st, GstConfig { w: 3, psi: 3 });
        let high = Gst::build(&st, GstConfig { w: 3, psi: 8 });
        assert!(high.stats().eligible_nodes < low.stats().eligible_nodes);
    }

    #[test]
    #[should_panic(expected = "psi")]
    fn psi_must_be_at_least_w() {
        GstConfig { w: 11, psi: 5 }.validated();
    }

    #[test]
    fn memory_estimate_nonzero() {
        let st = store(&["ACGTACGTAA", "ACGTACGTTT"]);
        let g = Gst::build(&st, GstConfig { w: 3, psi: 3 });
        assert!(g.memory_bytes() > 0);
    }
}
