//! Exhaustive maximal-match oracle.
//!
//! O(L²) per sequence pair — only usable at test scale, where it defines
//! ground truth for Definition 1 of the paper: α is a *maximal match*
//! between fragments f and g iff it occurs at (k, l), cannot be extended
//! to the right (mismatch, mask, or end of either sequence), and cannot
//! be extended to the left (`k = 1`, `l = 1`, mismatch, or mask).

use pgasm_seq::alphabet::is_base_code;
use pgasm_seq::FragmentStore;

/// One maximal match occurrence between two sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MaxMatch {
    /// Lower sequence id.
    pub a: u32,
    /// Higher sequence id.
    pub b: u32,
    /// Match start in `a`.
    pub a_pos: u32,
    /// Match start in `b`.
    pub b_pos: u32,
    /// Match length.
    pub len: u32,
}

#[inline]
fn eq(x: u8, y: u8) -> bool {
    x == y && is_base_code(x)
}

/// All maximal matches of length ≥ `psi` between sequences `a` and `b`
/// (given as code slices), reported as (a_pos, b_pos, len).
pub fn maximal_matches(a: &[u8], b: &[u8], psi: usize) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    for i in 0..a.len() {
        for j in 0..b.len() {
            if !eq(a[i], b[j]) {
                continue;
            }
            // Left-maximal?
            if i > 0 && j > 0 && eq(a[i - 1], b[j - 1]) {
                continue;
            }
            // Extend right.
            let mut len = 0usize;
            while i + len < a.len() && j + len < b.len() && eq(a[i + len], b[j + len]) {
                len += 1;
            }
            if len >= psi {
                out.push((i as u32, j as u32, len as u32));
            }
        }
    }
    out
}

/// All cross-sequence maximal matches of length ≥ `psi` in a store,
/// sorted for set comparison.
pub fn all_maximal_matches(store: &FragmentStore, psi: usize) -> Vec<MaxMatch> {
    let n = store.num_seqs();
    let mut out = Vec::new();
    for ai in 0..n {
        for bi in ai + 1..n {
            let a = store.get(pgasm_seq::SeqId(ai as u32));
            let b = store.get(pgasm_seq::SeqId(bi as u32));
            for (ap, bp, len) in maximal_matches(a, b, psi) {
                out.push(MaxMatch { a: ai as u32, b: bi as u32, a_pos: ap, b_pos: bp, len });
            }
        }
    }
    out.sort_unstable();
    out
}

/// The distinct sequence pairs having at least one maximal match ≥ psi.
pub fn distinct_pairs(matches: &[MaxMatch]) -> Vec<(u32, u32)> {
    let mut pairs: Vec<(u32, u32)> = matches.iter().map(|m| (m.a, m.b)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    #[test]
    fn finds_single_shared_region() {
        let a = DnaSeq::from("TTTACGTACGAA");
        let b = DnaSeq::from("GGACGTACGCC");
        let m = maximal_matches(a.codes(), b.codes(), 5);
        assert_eq!(m, vec![(3, 2, 7)]); // ACGTACG
    }

    #[test]
    fn left_maximality_enforced() {
        // Shared "XACGT" where the preceding char matches too: only the
        // longer occurrence is maximal.
        let a = DnaSeq::from("GACGTT");
        let b = DnaSeq::from("GACGTA");
        let m = maximal_matches(a.codes(), b.codes(), 3);
        assert_eq!(m, vec![(0, 0, 5)]); // GACGT only, not ACGT
    }

    #[test]
    fn mask_breaks_matches() {
        let mut a = DnaSeq::from("ACGTACGT");
        let b = DnaSeq::from("ACGTACGT");
        // The full match plus the two period-4 off-diagonal matches.
        assert_eq!(maximal_matches(a.codes(), b.codes(), 4), vec![(0, 0, 8), (0, 4, 4), (4, 0, 4)]);
        a.mask_range(4, 5);
        let mut m = maximal_matches(a.codes(), b.codes(), 4);
        m.sort_unstable();
        // The diagonal match is cut to 4 by the mask; the (4,0) match
        // loses its first base to the mask and falls below psi.
        assert_eq!(m, vec![(0, 0, 4), (0, 4, 4)]);
    }

    #[test]
    fn multiple_distinct_matches_between_one_pair() {
        let a = DnaSeq::from("AAACGTACGTTTTGGGCCCGGG");
        let b = DnaSeq::from("CCACGTACGTAAAGGGCCCTTT");
        let m = maximal_matches(a.codes(), b.codes(), 6);
        assert!(m.contains(&(2, 2, 8)), "ACGTACGT: {m:?}");
        assert!(m.contains(&(13, 13, 6)), "GGGCCC: {m:?}");
    }

    #[test]
    fn store_level_enumeration() {
        let st = FragmentStore::from_seqs(vec![
            DnaSeq::from("AAACGTACGTTT"),
            DnaSeq::from("CCACGTACGTGG"),
            DnaSeq::from("TTTTTTTTTTTT"),
        ]);
        let all = all_maximal_matches(&st, 6);
        let pairs = distinct_pairs(&all);
        assert_eq!(pairs, vec![(0, 1)]);
    }
}
