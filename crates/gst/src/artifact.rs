//! On-disk serialization of a built [`Gst`] — the expensive index the
//! artifact cache persists (ERA treats suffix-tree construction the same
//! way: an index worth building once and reloading).
//!
//! The encoding is the checked length-prefixed framing of
//! [`pgasm_seq::wire`]: flat little-endian arrays mirroring the arena
//! layout, no pointers to fix up. Decoding re-checks every structural
//! invariant (array lengths agree, node/suffix/lset indices in range)
//! so a corrupt frame errors instead of producing a tree that panics
//! mid-generation.

use crate::tree::{Gst, GstConfig, GstStats, Node, NONE, NUM_CLASSES};
use pgasm_seq::wire::{Reader, WireError, Writer};

/// Bump when the encoding below changes shape — a cache entry written
/// by a different schema is rejected and rebuilt, never misparsed.
pub const GST_CODEC_SCHEMA: u32 = 1;

impl Gst {
    /// Serialize the forest into `w`. Inverse of [`Gst::decode_from`].
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u32(self.config.w as u32).put_u32(self.config.psi as u32);
        w.put_u64(self.num_seqs as u64);
        w.put_u32(pgasm_seq::wire::checked_len(self.nodes.len()));
        for n in &self.nodes {
            w.put_u32(n.depth).put_u32(n.first_child).put_u32(n.next_sibling).put_u32(n.lset);
        }
        w.put_u32_slice(&self.suf_seq);
        w.put_u32_slice(&self.suf_pos);
        w.put_u32_slice(&self.suf_next);
        w.put_u32(pgasm_seq::wire::checked_len(self.lset_head.len()));
        for slot in 0..self.lset_head.len() {
            for c in 0..NUM_CLASSES {
                w.put_u32(self.lset_head[slot][c]);
            }
            for c in 0..NUM_CLASSES {
                w.put_u32(self.lset_tail[slot][c]);
            }
        }
        w.put_u32_slice(&self.order);
        let s = self.stats;
        for v in [s.buckets, s.nodes, s.leaves, s.suffixes, s.max_depth, s.eligible_nodes] {
            w.put_u64(v as u64);
        }
    }

    /// Decode a forest previously written by [`Gst::encode_into`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Gst, WireError> {
        let w_cfg = r.get_u32()? as usize;
        let psi = r.get_u32()? as usize;
        if !(1..=31).contains(&w_cfg) || psi < w_cfg {
            return Err(WireError::Malformed("GST config out of range"));
        }
        let config = GstConfig { w: w_cfg, psi };
        let num_seqs = r.get_u64()? as usize;
        let num_nodes = r.get_u32()? as usize;
        let mut nodes = Vec::new();
        nodes.try_reserve_exact(num_nodes).map_err(|_| WireError::Malformed("node count implausible"))?;
        for _ in 0..num_nodes {
            nodes.push(Node {
                depth: r.get_u32()?,
                first_child: r.get_u32()?,
                next_sibling: r.get_u32()?,
                lset: r.get_u32()?,
            });
        }
        let suf_seq = r.get_u32_slice()?;
        let suf_pos = r.get_u32_slice()?;
        let suf_next = r.get_u32_slice()?;
        let num_slots = r.get_u32()? as usize;
        let mut lset_head = Vec::new();
        let mut lset_tail = Vec::new();
        lset_head.try_reserve_exact(num_slots).map_err(|_| WireError::Malformed("slot count implausible"))?;
        lset_tail.try_reserve_exact(num_slots).map_err(|_| WireError::Malformed("slot count implausible"))?;
        for _ in 0..num_slots {
            let mut head = [NONE; NUM_CLASSES];
            let mut tail = [NONE; NUM_CLASSES];
            for h in head.iter_mut() {
                *h = r.get_u32()?;
            }
            for t in tail.iter_mut() {
                *t = r.get_u32()?;
            }
            lset_head.push(head);
            lset_tail.push(tail);
        }
        let order = r.get_u32_slice()?;
        let mut stats_fields = [0u64; 6];
        for f in stats_fields.iter_mut() {
            *f = r.get_u64()?;
        }
        let stats = GstStats {
            buckets: stats_fields[0] as usize,
            nodes: stats_fields[1] as usize,
            leaves: stats_fields[2] as usize,
            suffixes: stats_fields[3] as usize,
            max_depth: stats_fields[4] as usize,
            eligible_nodes: stats_fields[5] as usize,
        };

        // Structural validation: every cross-array index must be NONE or
        // in range, or traversal would index out of bounds later.
        let ns = suf_seq.len();
        if suf_pos.len() != ns || suf_next.len() != ns {
            return Err(WireError::Malformed("suffix arrays disagree on length"));
        }
        let node_ok = |i: u32| i == NONE || (i as usize) < nodes.len();
        let suf_ok = |i: u32| i == NONE || (i as usize) < ns;
        for n in &nodes {
            if !node_ok(n.first_child) || !node_ok(n.next_sibling) {
                return Err(WireError::Malformed("node child/sibling index out of range"));
            }
            if n.lset != NONE && n.lset as usize >= lset_head.len() {
                return Err(WireError::Malformed("node lset slot out of range"));
            }
        }
        for (&seq, &next) in suf_seq.iter().zip(&suf_next) {
            if seq as usize >= num_seqs {
                return Err(WireError::Malformed("suffix sequence id out of range"));
            }
            if !suf_ok(next) {
                return Err(WireError::Malformed("suffix list pointer out of range"));
            }
        }
        for slot in 0..lset_head.len() {
            for c in 0..NUM_CLASSES {
                if !suf_ok(lset_head[slot][c]) || !suf_ok(lset_tail[slot][c]) {
                    return Err(WireError::Malformed("lset head/tail out of range"));
                }
            }
        }
        if order.iter().any(|&i| i as usize >= nodes.len()) {
            return Err(WireError::Malformed("processing order references unknown node"));
        }

        Ok(Gst { config, nodes, suf_seq, suf_pos, suf_next, lset_head, lset_tail, order, num_seqs, stats })
    }

    /// Convenience: encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.memory_bytes() + 64);
        self.encode_into(&mut w);
        w.finish()
    }

    /// Convenience: decode a full buffer, requiring exact consumption.
    pub fn decode(buf: &[u8]) -> Result<Gst, WireError> {
        let mut r = Reader::new(buf);
        let gst = Gst::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(gst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::{GenMode, PairGenerator, PromisingPair};
    use pgasm_seq::{DnaSeq, FragmentStore};

    fn sample_store() -> FragmentStore {
        // Overlapping tiles of a deterministic pseudo-random text so the
        // tree has internal structure, lsets, and duplicate suffixes.
        let mut x = 0x9E3779B97F4A7C15u64;
        let g: String = (0..400)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect();
        let b = g.as_bytes();
        FragmentStore::from_seqs((0..=300 / 50).map(|i| DnaSeq::from_ascii(&b[i * 50..i * 50 + 100])))
    }

    fn pairs_of(gst: Gst) -> Vec<PromisingPair> {
        PairGenerator::new(gst, GenMode::DupElim, |_, _| false).collect()
    }

    #[test]
    fn decoded_gst_generates_identical_pairs() {
        let store = sample_store().with_reverse_complements();
        let config = GstConfig { w: 8, psi: 16 };
        let original = Gst::build(&store, config);
        let stats = original.stats();
        let bytes = original.encode();
        let decoded = Gst::decode(&bytes).expect("round trip");
        assert_eq!(decoded.stats(), stats);
        assert_eq!(decoded.config(), config);
        assert_eq!(decoded.num_seqs(), store.num_seqs());
        let expect = pairs_of(Gst::build(&store, config));
        assert_eq!(pairs_of(decoded), expect);
        assert!(!expect.is_empty(), "fixture must exercise pair generation");
    }

    #[test]
    fn empty_gst_round_trips() {
        let store = FragmentStore::new();
        let gst = Gst::build(&store, GstConfig { w: 4, psi: 4 });
        let decoded = Gst::decode(&gst.encode()).unwrap();
        assert_eq!(decoded.stats(), gst.stats());
    }

    #[test]
    fn truncation_never_panics() {
        let store = sample_store().with_reverse_complements();
        let bytes = Gst::build(&store, GstConfig { w: 8, psi: 16 }).encode();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(Gst::decode(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn corrupt_index_rejected() {
        let store = sample_store().with_reverse_complements();
        let gst = Gst::build(&store, GstConfig { w: 8, psi: 16 });
        let mut bad = gst.encode();
        // Overwrite the first node's first_child with a huge index.
        // Layout: w(4) psi(4) num_seqs(8) node_count(4) depth(4) first_child…
        let off = 4 + 4 + 8 + 4 + 4;
        bad[off..off + 4].copy_from_slice(&0x7FFF_FFF0u32.to_le_bytes());
        assert!(Gst::decode(&bad).is_err());
    }
}
