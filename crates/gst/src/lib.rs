//! # pgasm-gst — generalized suffix tree and promising-pair generation
//!
//! Implements §5–§6 of the paper:
//!
//! - [`suffix`] — suffix enumeration and bucketing by w-length prefixes,
//!   shared by the serial builder and the parallel construction driver
//!   in `pgasm-core`.
//! - [`tree`] — the generalized suffix tree (GST) over a fragment set
//!   (typically fragments *and* their reverse complements), stored as a
//!   forest of compacted tries, one per w-prefix bucket, built
//!   depth-first by character partitioning. The portion of the GST above
//!   string-depth `w` is never materialised ("the top portion of the GST
//!   is not needed for pair generation").
//! - [`pairs`] — the on-demand *promising pair* generator: fragment
//!   pairs sharing a maximal match of length ≥ ψ, produced in
//!   non-increasing order of maximal-match length, O(1) time per pair,
//!   linear space, via `lsets` (partitions of subtree suffixes by
//!   preceding character) processed bottom-up in decreasing string-depth
//!   order. Supports the paper's *duplicate elimination* refinement that
//!   generates each fragment pair at most once per node.
//! - [`brute`] — an exhaustive O(L²) maximal-match oracle used by tests
//!   and benches to verify generator completeness.
//!
//! Masked bases (repeats, vector) never match; exact matches therefore
//! never cross a masked position, which is modelled by enumerating
//! suffixes per *unmasked run* and bounding each suffix at its run end.

pub mod artifact;
pub mod brute;
pub mod pairs;
pub mod suffix;
pub mod tree;

pub use artifact::GST_CODEC_SCHEMA;
pub use pairs::{GenMode, PairGenerator, PromisingPair};
pub use suffix::{bucket_suffixes, bucket_suffixes_of, enumerate_suffixes, Suffix};
pub use tree::{Gst, GstConfig, GstStats, TextSource};
