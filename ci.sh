#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — all must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
