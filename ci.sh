#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — all must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> distributed tests"
cargo test -q --test distributed --test adversarial_protocol --test telemetry_e2e

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> coalescing smoke bench"
rm -f BENCH_ablation_coalescing.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin ablation_coalescing
test -s BENCH_ablation_coalescing.json || { echo "missing BENCH_ablation_coalescing.json"; exit 1; }

echo "CI OK"
