#!/usr/bin/env bash
# Local CI gate: build, test, lint, format — all must pass.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> distributed tests"
cargo test -q --test distributed --test adversarial_protocol --test telemetry_e2e --test assembly_balance

echo "==> fault-tolerance matrix (release: the full victim sweep is heavy in dev)"
cargo test -q --release --test fault_tolerance -- --include-ignored

echo "==> force-scalar feature matrix (SIMD fallback must stay bit-identical)"
cargo test -q -p pgasm-align --features force-scalar

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> coalescing smoke bench"
rm -f BENCH_ablation_coalescing.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin ablation_coalescing
test -s BENCH_ablation_coalescing.json || { echo "missing BENCH_ablation_coalescing.json"; exit 1; }

echo "==> alignment-kernel smoke bench"
rm -f BENCH_ablation_align_kernel.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin ablation_align_kernel
test -s BENCH_ablation_align_kernel.json || { echo "missing BENCH_ablation_align_kernel.json"; exit 1; }

echo "==> SIMD + adaptive-band smoke bench"
rm -f BENCH_ablation_simd_band.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin ablation_simd_band
test -s BENCH_ablation_simd_band.json || { echo "missing BENCH_ablation_simd_band.json"; exit 1; }

echo "==> assembly-balance smoke bench"
rm -f BENCH_ablation_assembly_balance.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin ablation_assembly_balance
test -s BENCH_ablation_assembly_balance.json || { echo "missing BENCH_ablation_assembly_balance.json"; exit 1; }

echo "==> fault-recovery smoke bench"
rm -f BENCH_ablation_fault_recovery.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin ablation_fault_recovery
test -s BENCH_ablation_fault_recovery.json || { echo "missing BENCH_ablation_fault_recovery.json"; exit 1; }

echo "==> critical-path analyzer smoke bench"
rm -f BENCH_run_analyze.json
PGASM_SCALE="${PGASM_SCALE:-0.3}" cargo run --release -q -p pgasm-bench --bin run_analyze
test -s BENCH_run_analyze.json || { echo "missing BENCH_run_analyze.json"; exit 1; }

echo "==> bench regression gate (vs baselines/)"
# Protocol round counts are scheduler-dependent in the ranks-as-threads
# simulator, so message/envelope/modelled-comm counters wobble ±15% or
# so run-to-run — gate them at +50% (a broken coalescer shifts them by
# several hundred percent). Wall clocks are machine-sensitive, so they
# only trip the gate past +150%. The committed baselines were recorded
# at scale 0.3 — at any other scale the counters legitimately differ,
# so the diff is skipped.
if [ "${PGASM_SCALE:-0.3}" = "0.3" ]; then
  cargo run --release -q -p pgasm-bench --bin bench_diff -- --wall-tol 1.5 --comm-tol 0.5
else
  echo "skipped: PGASM_SCALE=${PGASM_SCALE} != 0.3 (baseline scale)"
fi

echo "==> traced smoke run + trace validation"
rm -f ci_reads.fastq ci.trace.json ci.metrics.json
cargo run --release -q --bin pgasm -- generate --kind maize --out ci_reads.fastq --scale 0.2 --seed 7
cargo run --release -q --bin pgasm -- cluster --reads ci_reads.fastq --ranks 4 \
  --trace-json ci.trace.json --metrics-json ci.metrics.json
# 4 clustering ranks + the pipeline's own track + 4 distributed-assembly
# tracks; the assemble category is mandatory now that `--ranks` runs the
# assembly phase through the task engine. --max-dropped 0: a lossy trace
# would silently skew the critical-path analysis below.
cargo run --release -q -p pgasm-bench --bin trace_check -- ci.trace.json \
  --min-categories 5 --min-tracks 9 --require assemble --max-dropped 0

echo "==> critical-path analysis of the traced smoke run"
# Attribution categories must cover each rank's wall time within 5% and
# the critical path must be non-empty — the analyzer's consistency gate.
cargo run --release -q --bin pgasm -- analyze --trace-json ci.trace.json \
  --metrics-json ci.metrics.json --out ci.analysis.json --coverage-tol 0.05
test -s ci.analysis.json || { echo "missing ci.analysis.json"; exit 1; }
rm -f ci_reads.fastq ci.trace.json ci.metrics.json ci.analysis.json

echo "==> artifact-cache smoke (cold run populates, warm run hits)"
# Serial (no --ranks) so the preprocess, GST, and contigs caches all
# engage. The same command runs twice against a shared --cache-dir; the
# second run must load all three artifacts (cache_hit = 3,
# cache_miss = 0) and skip the GST build (no gst_build span).
rm -rf ci_cache ci_cache_reads.fastq ci.cache-cold.json ci.cache-warm.json
cargo run --release -q --bin pgasm -- generate --kind maize --out ci_cache_reads.fastq --scale 0.1 --seed 11
cargo run --release -q --bin pgasm -- cluster --reads ci_cache_reads.fastq \
  --cache-dir ci_cache --metrics-json ci.cache-cold.json
cargo run --release -q --bin pgasm -- cluster --reads ci_cache_reads.fastq \
  --cache-dir ci_cache --metrics-json ci.cache-warm.json
grep -q '"cache_miss": 3' ci.cache-cold.json || { echo "cold run should miss three times"; exit 1; }
grep -q '"gst_build"' ci.cache-cold.json || { echo "cold run should record a gst_build span"; exit 1; }
grep -q '"cache_hit": 3' ci.cache-warm.json || { echo "warm run should hit three times"; exit 1; }
grep -q '"cache_miss": 3' ci.cache-warm.json && { echo "warm run must not miss"; exit 1; }
grep -q '"gst_build"' ci.cache-warm.json && { echo "warm run must not rebuild the GST"; exit 1; }
rm -rf ci_cache ci_cache_reads.fastq ci.cache-cold.json ci.cache-warm.json

echo "==> fault-injection smoke (kill 1 of 8 workers; contigs must not change)"
# A deterministic kill removes worker 3 early in the clustering phase;
# the lease journal re-queues its work and the contigs must come out
# byte-identical, with the metrics reporting exactly one dead rank and
# a nonzero recovered-task count.
rm -rf ci_ft_reads.fastq ci_ft_base.fasta ci_ft_killed.fasta ci.ft.json
cargo run --release -q --bin pgasm -- generate --kind maize --out ci_ft_reads.fastq --scale 0.2 --seed 13
cargo run --release -q --bin pgasm -- assemble --reads ci_ft_reads.fastq --out ci_ft_base.fasta --ranks 8
cargo run --release -q --bin pgasm -- assemble --reads ci_ft_reads.fastq --out ci_ft_killed.fasta --ranks 8 \
  --fault-plan "kill:rank=3,event=5" --metrics-json ci.ft.json
cmp ci_ft_base.fasta ci_ft_killed.fasta || { echo "contigs changed after a worker kill"; exit 1; }
grep -q '"dead_ranks": 1' ci.ft.json || { echo "kill not detected"; exit 1; }
grep -q '"recovered_tasks": 0' ci.ft.json && { echo "no leases recovered"; exit 1; }
rm -rf ci_ft_reads.fastq ci_ft_base.fasta ci_ft_killed.fasta ci.ft.json

echo "CI OK"
