//! Quickstart: cluster-then-assemble on a tiny synthetic dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small genome with a few gene islands, samples error-free
//! reads from the islands, runs the full pipeline (clustering + per-
//! cluster assembly), and shows that each cluster reassembles into a
//! contig that matches the genome exactly.

use pgasm::cluster::{ClusterParams, Pipeline, PipelineConfig};
use pgasm::gst::GstConfig;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::simgen::ReadKind;

fn main() {
    // 1. A 30 kb genome with four gene islands and no repeats.
    let genome = Genome::generate(
        &GenomeSpec {
            length: 30_000,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (50, 60),
            repeat_identity: 1.0,
            islands: 4,
            island_len: (2_000, 3_000),
        },
        7,
    );
    println!("genome: {} bp, {} islands", genome.len(), genome.islands.len());

    // 2. Sample 240 clean reads concentrated on the islands
    //    (gene-enriched sequencing, like the paper's MF/HC data).
    let mut config = SamplerConfig::clean();
    config.island_bias = 1.0;
    let mut sampler = Sampler::new(&genome, config, 8);
    let reads = sampler.enriched(240, ReadKind::Mf);
    println!("reads:  {} ({} bp total)", reads.len(), reads.total_bases());

    // 3. Cluster-then-assemble. No preprocessing needed — the reads are
    //    clean — so run clustering directly.
    let cluster = ClusterParams { gst: GstConfig { w: 11, psi: 20 }, ..Default::default() };
    let pipeline = Pipeline::new(PipelineConfig {
        preprocess: None,
        cluster,
        parallel_ranks: None,
        assembly_threads: 2,
        ..Default::default()
    });
    let report = pipeline.run(&reads, &[], &[]);

    println!(
        "clusters: {} non-singleton, {} singletons, largest holds {:.1}% of reads",
        report.clustering.num_non_singletons(),
        report.clustering.num_singletons(),
        report.clustering.max_cluster_fraction() * 100.0
    );

    // 4. Each cluster assembles (stringently) into contigs; check them
    //    against the genome.
    let genome_fwd = String::from_utf8(genome.seq.to_ascii()).unwrap();
    let genome_rc = String::from_utf8(genome.seq.reverse_complement().to_ascii()).unwrap();
    let mut exact = 0usize;
    let mut total = 0usize;
    for assembly in &report.assemblies {
        for contig in &assembly.contigs {
            total += 1;
            let s = String::from_utf8(contig.seq.to_ascii()).unwrap();
            if genome_fwd.contains(&s) || genome_rc.contains(&s) {
                exact += 1;
            }
        }
    }
    println!("contigs:  {total} assembled, {exact} are exact substrings of the genome");
    println!("contigs per cluster: {:.2} (paper achieves ~1.1 on maize)", report.contigs_per_cluster());
    assert_eq!(exact, total, "with error-free reads every contig must be exact");
    println!("quickstart OK");
}
