//! The paper's headline workload at reduced scale: a highly repetitive
//! maize-like genome sampled by four sequencing strategies (MF, HC,
//! BAC, WGS), pushed through the full pipeline — vector/quality
//! trimming, repeat masking, clustering, per-cluster assembly — with
//! the §8-style summary at the end.
//!
//! ```text
//! cargo run --release --example maize_pipeline
//! ```

use pgasm::cluster::validation::validate_clusters;
use pgasm::cluster::{ClusterParams, Pipeline, PipelineConfig};
use pgasm::gst::GstConfig;
use pgasm::preprocess::PreprocessConfig;
use pgasm::seq::DnaSeq;
use pgasm::simgen::presets;
use pgasm::simgen::vector::VECTOR_SEQ;

fn main() {
    // Maize-like data: 70% repeat genome, gene islands, strategy mix.
    let dataset = presets::maize_like(150_000, 350, 2024);
    println!("{}", dataset.name);
    println!("raw reads: {} ({} bp)", dataset.reads.len(), dataset.total_bases());

    let pipeline = Pipeline::new(PipelineConfig {
        preprocess: Some(PreprocessConfig::default()),
        cluster: ClusterParams { gst: GstConfig { w: 11, psi: 20 }, ..Default::default() },
        parallel_ranks: None,
        assembly_threads: 2,
        ..Default::default()
    });
    let report =
        pipeline.run(&dataset.reads, &[DnaSeq::from(VECTOR_SEQ)], &dataset.genomes[0].repeat_library);

    // Preprocessing accounting (the paper's Table 2).
    if let Some(pp) = &report.preprocess {
        println!("\npreprocessing (fragments kept by strategy):");
        for (label, nb, _, na, _) in pp.table_rows() {
            println!("  {label:>4}: {na:>4} of {nb:>4} ({:.0}%)", 100.0 * na as f64 / nb.max(1) as f64);
        }
        println!(
            "  rejected by trimming: {}, invalidated by masking: {}",
            pp.rejected_by_trim, pp.rejected_by_mask
        );
    }

    // Clustering summary (§8).
    let c = &report.clustering;
    println!("\nclustering:");
    println!("  non-singleton clusters: {}", c.num_non_singletons());
    println!("  singletons:             {}", c.num_singletons());
    println!("  mean fragments/cluster: {:.2}", c.mean_cluster_size());
    println!("  largest cluster:        {:.1}% of input", c.max_cluster_fraction() * 100.0);
    let s = report.cluster_stats;
    println!(
        "  pairs: {} generated, {} aligned ({:.0}% savings), {} accepted",
        s.generated,
        s.aligned,
        s.savings() * 100.0,
        s.accepted
    );

    // Assembly + ground-truth validation.
    println!("\nassembly:");
    println!("  contigs per cluster: {:.2} (paper: ~1.1)", report.contigs_per_cluster());
    let v = validate_clusters(&report.clustering, &report.origin, &dataset.reads.provenance, 2_000);
    println!(
        "  cluster specificity: {:.1}% map to a single genomic region (paper: 98.7% on drosophila)",
        v.specificity() * 100.0
    );
    println!(
        "\ntimings: preprocess {:.2}s, cluster {:.2}s, assemble {:.2}s",
        report.preprocess_seconds, report.cluster_seconds, report.assembly_seconds
    );
}
