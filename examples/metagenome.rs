//! Environmental-sample clustering (the paper's §9.2 Sargasso Sea
//! experiment at reduced scale): WGS reads from dozens of bacterial
//! species with power-law abundances. Clustering decomposes the mixed
//! sample so that each cluster is (almost always) species-pure — the
//! deconvolution property the paper argues makes any downstream
//! environmental assembler's job tractable.
//!
//! ```text
//! cargo run --release --example metagenome
//! ```

use pgasm::cluster::{cluster_serial, ClusterParams};
use pgasm::gst::GstConfig;
use pgasm::preprocess::{PreprocessConfig, Preprocessor};
use pgasm::seq::DnaSeq;
use pgasm::simgen::presets;
use pgasm::simgen::vector::VECTOR_SEQ;
use std::collections::HashMap;

fn main() {
    let dataset = presets::sargasso_like(20, 1_500, 99);
    println!("{}", dataset.name);

    // Screen cloning vectors and trim quality first — raw environmental
    // reads share vector sequence, which would otherwise link everything
    // to everything ("ubiquitous sequences" removed in §9.2).
    let pp = Preprocessor::new(PreprocessConfig::default(), &[DnaSeq::from(VECTOR_SEQ)], &[]);
    let out = pp.run(&dataset.reads);
    let store = out.store;
    println!("fragments after preprocessing: {}", store.num_fragments());

    let params = ClusterParams { gst: GstConfig { w: 11, psi: 20 }, ..Default::default() };
    let (clustering, stats) = cluster_serial(&store, &params);

    println!(
        "clusters: {} non-singleton, {} singletons",
        clustering.num_non_singletons(),
        clustering.num_singletons()
    );
    println!(
        "pairs: {} generated, {} aligned ({:.0}% savings)",
        stats.generated,
        stats.aligned,
        stats.savings() * 100.0
    );

    // Species purity: how many clusters mix reads from two species?
    let mut pure = 0usize;
    let mut mixed = 0usize;
    let mut clusters_per_species: HashMap<u32, usize> = HashMap::new();
    for cluster in clustering.non_singletons() {
        let species: std::collections::HashSet<u32> =
            cluster.iter().map(|&f| dataset.reads.provenance[out.origin[f as usize]].genome).collect();
        if species.len() == 1 {
            pure += 1;
            *clusters_per_species.entry(*species.iter().next().unwrap()).or_default() += 1;
        } else {
            mixed += 1;
        }
    }
    println!("species-pure clusters: {pure}, mixed: {mixed}");

    // Cluster counts vary with abundance: the deepest-covered species
    // coalesce into a few large clusters, mid-abundance species split
    // into many coverage islands, and the long tail shows up mostly as
    // singletons.
    let mut by_species: Vec<(u32, usize)> = clusters_per_species.into_iter().collect();
    by_species.sort_unstable();
    println!("clusters per species (species are abundance-ranked):");
    for (sp, n) in by_species.iter().take(10) {
        println!("  species {sp:>2}: {n} clusters");
    }
    assert!(pure > 0, "expected at least one species-pure cluster");
}
