//! The master–worker runtime in action: the same fragments clustered
//! serially and on 2/4/8 simulated distributed-memory ranks, showing
//! that the partition is identical while the work spreads across
//! workers, plus the protocol's traffic profile.
//!
//! ```text
//! cargo run --release --example parallel_cluster
//! ```

use pgasm::cluster::{cluster_parallel, cluster_serial, ClusterParams, MasterWorkerConfig};
use pgasm::gst::GstConfig;
use pgasm::mpisim::CostModel;
use pgasm::preprocess::{PreprocessConfig, Preprocessor};
use pgasm::seq::DnaSeq;
use pgasm::simgen::presets;
use pgasm::simgen::vector::VECTOR_SEQ;

fn main() {
    let dataset = presets::drosophila_like(60_000, 6.0, 31);
    println!("{}", dataset.name);
    // Trim vector/quality artefacts and mask repeats before clustering.
    let known: Vec<DnaSeq> = dataset.genomes[0].repeat_library.clone();
    let pp = Preprocessor::new(PreprocessConfig::default(), &[DnaSeq::from(VECTOR_SEQ)], &known);
    let store = pp.run(&dataset.reads).store;
    println!("fragments after preprocessing: {}", store.num_fragments());

    let params = ClusterParams { gst: GstConfig { w: 11, psi: 20 }, ..Default::default() };
    let (serial, serial_stats) = cluster_serial(&store, &params);
    println!(
        "serial: {} clusters / {} singletons, {} aligned of {} generated",
        serial.num_non_singletons(),
        serial.num_singletons(),
        serial_stats.aligned,
        serial_stats.generated
    );

    let model = CostModel::BLUEGENE_L;
    for p in [2usize, 4, 8] {
        let cfg = MasterWorkerConfig { batch: 64, pending_cap: 4096, ..Default::default() };
        let report = cluster_parallel(&store, p, &params, &cfg);
        assert_eq!(report.clustering, serial, "parallel clustering must equal serial");
        let master = &report.comm[0];
        let worker_bytes: u64 = report.comm[1..].iter().map(|c| c.bytes_sent).sum();
        println!(
            "p={p}: identical clustering; master handled {} msgs ({} KiB in, {} KiB out), \
             workers sent {} KiB, modelled comm {:.2} ms/rank max",
            master.msgs_recv,
            master.bytes_recv / 1024,
            master.bytes_sent / 1024,
            worker_bytes / 1024,
            report.comm.iter().map(|c| model.comm_time(c)).fold(0.0, f64::max) * 1e3,
        );
    }
    println!("parallel == serial for every p: OK");
}
