//! Scaffolding with clone mates (the paper's §2 "order and orientation
//! of the contigs along the chromosomes is later determined using a
//! process called scaffolding").
//!
//! A genome with unclonable gaps is sequenced as mate pairs; reads
//! falling into the gaps are lost, so assembly yields one contig per
//! clonable segment. Mate pairs whose sub-clones *span* a gap then
//! stitch the contigs back into one scaffold in true genome order,
//! with estimated gap sizes.
//!
//! ```text
//! cargo run --release --example scaffolding
//! ```

use pgasm::assemble::scaffold::{scaffold, MateLink, ReadPlacement, ScaffoldConfig};
use pgasm::cluster::{ClusterParams, Pipeline, PipelineConfig};
use pgasm::gst::GstConfig;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::simgen::ReadSet;
use std::collections::HashMap;

fn main() {
    // A clean 30 kb genome with three unclonable gaps.
    let genome = Genome::generate(
        &GenomeSpec {
            length: 30_000,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (50, 60),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        404,
    );
    let gaps: Vec<(u32, u32)> = vec![(7_000, 7_500), (14_500, 15_000), (22_000, 22_500)];

    // Mate-pair sequencing: ~14x coverage, 4–6 kb inserts.
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (300, 500);
    let mut sampler = Sampler::new(&genome, cfg, 405);
    let (reads, raw_links) = sampler.mate_pairs(600, (4_000, 6_000));
    println!("sampled {} reads in {} mate pairs", reads.len(), raw_links.len());

    // Reads inside a gap are unclonable and vanish; renumber survivors.
    let mut keep_map: HashMap<usize, usize> = HashMap::new();
    let mut surviving = ReadSet::default();
    for i in 0..reads.len() {
        let p = reads.provenance[i];
        let hits_gap = gaps.iter().any(|&(s, e)| p.start < e && s < p.end);
        if !hits_gap {
            keep_map.insert(i, surviving.len());
            surviving.seqs.push(reads.seqs[i].clone());
            surviving.quals.push(reads.quals[i].clone());
            surviving.provenance.push(p);
        }
    }
    let links: Vec<MateLink> = raw_links
        .iter()
        .filter_map(|&(r1, r2, insert)| {
            Some(MateLink { read1: *keep_map.get(&r1)?, read2: *keep_map.get(&r2)?, insert })
        })
        .collect();
    println!("{} reads survive the gaps; {} usable mate links", surviving.len(), links.len());

    // Cluster + assemble.
    let pipeline = Pipeline::new(PipelineConfig {
        preprocess: None,
        cluster: ClusterParams { gst: GstConfig { w: 11, psi: 20 }, ..Default::default() },
        parallel_ranks: None,
        assembly_threads: 2,
        ..Default::default()
    });
    let report = pipeline.run(&surviving, &[], &[]);
    println!(
        "assembly: {} clusters -> {} contigs",
        report.clustering.num_non_singletons(),
        report.total_contigs()
    );

    // Collect global contigs and read placements (pipeline fragment ids
    // are read ids here because preprocessing was skipped).
    let mut contig_lens: Vec<usize> = Vec::new();
    let mut placements: HashMap<usize, ReadPlacement> = HashMap::new();
    let mut contig_truth: Vec<u32> = Vec::new(); // true genome start per contig
    let clusters: Vec<&Vec<u32>> = report.clustering.non_singletons().collect();
    for (assembly, members) in report.assemblies.iter().zip(&clusters) {
        for contig in &assembly.contigs {
            let id = contig_lens.len();
            contig_lens.push(contig.seq.len());
            let mut true_start = u32::MAX;
            for p in &contig.placements {
                let read = report.origin[members[p.read] as usize];
                placements.insert(
                    read,
                    ReadPlacement {
                        contig: id,
                        offset: p.offset,
                        flipped: p.flipped,
                        len: surviving.seqs[read].len(),
                    },
                );
                true_start = true_start.min(surviving.provenance[read].start);
            }
            contig_truth.push(true_start);
        }
    }
    println!("contigs: {:?} (lengths)", contig_lens);

    // Scaffold.
    let scaffolds = scaffold(&contig_lens, &placements, &links, &ScaffoldConfig::default());
    let multi: Vec<_> = scaffolds.iter().filter(|s| s.len() > 1).collect();
    println!("scaffolds: {} total, {} multi-contig", scaffolds.len(), multi.len());
    for s in &multi {
        print!("  scaffold:");
        for part in &s.parts {
            if part.gap_before != 0 {
                print!(" --[gap {:>4}]--", part.gap_before);
            }
            print!(" contig{}{}", part.contig, if part.flipped { "(-)" } else { "(+)" });
        }
        println!("  (span {} bp)", s.span(&contig_lens));
        // Verify the scaffold order matches true genome coordinates.
        let truth: Vec<u32> = s.parts.iter().map(|p| contig_truth[p.contig]).collect();
        let sorted = {
            let mut t = truth.clone();
            t.sort_unstable();
            t
        };
        let reversed: Vec<u32> = sorted.iter().rev().copied().collect();
        assert!(truth == sorted || truth == reversed, "scaffold order {truth:?} does not match genome order");
    }
    let largest = multi.iter().map(|s| s.len()).max().unwrap_or(1);
    println!("largest scaffold chains {largest} contigs; order matches the genome: OK");
}
